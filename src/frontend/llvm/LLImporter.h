//===- LLImporter.h - Internal .ll importer state ---------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The importer class shared by the frontend's translation units, split by
/// layer the way shady splits its LLVM frontend (`l2s_*`):
///
///   LLLexer.cpp         — tokenizer
///   LLFrontend.cpp      — module-structure parser + post-process pass +
///                         the public importLLModule / looksLikeLLVMIR
///   LLTypes.cpp         — type & constant translator
///   LLInstructions.cpp  — instruction translator (incl. switch-as-br
///                         lowering)
///
/// Error discipline: `LLRejectErr` is thrown while translating one function
/// and caught per function (the function is demoted to a declaration and
/// recorded with its named reason class); `LLFatalErr` is thrown for
/// malformed top-level structure and fails the whole import with a
/// line/column diagnostic. Neither escapes importLLModule().
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_FRONTEND_LLVM_LLIMPORTER_H
#define LLVMMD_FRONTEND_LLVM_LLIMPORTER_H

#include "frontend/llvm/LLFrontend.h"
#include "frontend/llvm/LLLexer.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace llvmmd {

/// Per-function rejection (caught at function granularity).
struct LLRejectErr {
  const char *Reason; ///< llreject:: class
  std::string Detail;
  unsigned Line;
};

/// Module-level malformation (fails the whole import).
struct LLFatalErr {
  std::string Msg;
  unsigned Line;
  unsigned Col;
};

class LLImporter {
public:
  LLImporter(Context &Ctx, std::vector<LLToken> Tokens,
             std::string ModuleName);

  /// Runs both passes. Does not throw.
  LLImportResult run();

private:
  //===--------------------------------------------------------------------===//
  // Shared state
  //===--------------------------------------------------------------------===//

  Context &Ctx;
  std::vector<LLToken> Toks;
  size_t Cur = 0;
  std::unique_ptr<Module> M;
  std::vector<LLFunctionReject> Rejected;

  /// A `define` whose signature imported: the declaration exists, the body
  /// token range is translated in pass 2.
  struct PendingFn {
    Function *F = nullptr;
    std::string OrigName;                  ///< .ll name (pre-sanitization)
    std::vector<std::string> ArgNames;     ///< .ll argument names
    size_t BodyBegin = 0;                  ///< first token inside the braces
    size_t BodyEnd = 0;                    ///< index of the closing '}'
    unsigned DefLine = 0;
  };
  std::vector<PendingFn> Pending;

  /// .ll name -> native object (names are sanitized on creation, so module
  /// lookups by original name go through these maps).
  std::map<std::string, Function *> FnByName;
  std::map<std::string, GlobalVariable *> GlobalByName;
  /// Declared/defined functions we could not model: callee name -> reason
  /// class to reject the *caller* with.
  std::map<std::string, const char *> BadCallees;
  std::set<std::string> UnsupportedGlobals;
  std::set<std::string> UsedModuleNames; ///< sanitized global/function names

  //===--------------------------------------------------------------------===//
  // Token cursor helpers (LLFrontend.cpp)
  //===--------------------------------------------------------------------===//

  const LLToken &tok(size_t Ahead = 0) const;
  void advance();
  bool isWord(const char *W) const;
  bool eatWord(const char *W);
  void expectTok(LLTok K, const char *What); ///< fatal on mismatch
  void skipRestOfLine();
  /// Skips ", align 4, !tbaa !8 #2"-style trailer tokens on \p Line.
  void skipLineTail(unsigned Line, size_t Limit);
  /// Skips trailer tokens sharing the last *consumed* token's line. Unlike
  /// skipRestOfLine this is a no-op when the construct ended its line and
  /// the cursor already sits on the next line's first token.
  void skipTrailingOnLine();
  [[noreturn]] void fatal(std::string Msg) const;
  [[noreturn]] void reject(const char *Reason, std::string Detail) const;

  //===--------------------------------------------------------------------===//
  // Name sanitization (LLFrontend.cpp)
  //===--------------------------------------------------------------------===//

  /// Restricts a .ll name to the mini-IR identifier charset ([A-Za-z0-9_.$])
  /// and uniquifies against \p Used, so import -> print -> reparse
  /// round-trips.
  static std::string sanitizeName(const std::string &Name);
  static std::string uniqueName(std::string Base, std::set<std::string> &Used);

  //===--------------------------------------------------------------------===//
  // Pass 1: module structure (LLFrontend.cpp)
  //===--------------------------------------------------------------------===//

  void scanTopLevel();
  void parseGlobalDef();
  void parseFunctionHeader(bool IsDefine);
  /// First @name on the current line (for diagnostics before the name is
  /// reached in grammar order).
  std::string peekFunctionName() const;

  //===--------------------------------------------------------------------===//
  // Type & constant translator (LLTypes.cpp)
  //===--------------------------------------------------------------------===//

  /// A translated first-class type, or one level of array ([N x T]).
  struct LLType {
    Type *Ty = nullptr; ///< scalar type, or the array element type
    uint64_t Count = 0;
    bool IsArray = false;
  };

  Type *parseType();         ///< scalar only; arrays reject too
  LLType parseTypeOrArray(); ///< allows [N x scalar]
  bool atTypeStart() const;
  /// Skips parameter/return-value attributes (noundef, align N,
  /// dereferenceable(8), ...) at the cursor.
  void skipParamAttrs();
  Constant *parseConstantLiteral(Type *Ty);
  Constant *zeroOf(Type *Ty);
  int64_t parseIntText(const std::string &Text) const;

  //===--------------------------------------------------------------------===//
  // Pass 2: instruction translator (LLInstructions.cpp)
  //===--------------------------------------------------------------------===//

  struct Body {
    PendingFn *PF = nullptr;
    std::map<std::string, Value *> Locals; ///< .ll name -> value
    std::set<std::string> UsedValueNames;  ///< sanitized
    std::map<std::string, BasicBlock *> Blocks; ///< .ll label -> block
    std::set<std::string> UsedBlockNames;
    std::vector<BasicBlock *> Order; ///< textual definition order
    struct Fixup {
      Instruction *I;
      unsigned OpIdx;
      std::string Name;
      Type *Ty;
      unsigned Line;
    };
    std::vector<Fixup> Fixups;
    /// One lowered `switch`: every (target, actual-source) edge the icmp/br
    /// chain produces, for the phi-incoming remap in post-processing.
    struct SwitchLower {
      BasicBlock *Orig;
      std::vector<std::pair<BasicBlock *, BasicBlock *>> Edges;
    };
    std::vector<SwitchLower> Switches;
  };

  using DeferList = std::vector<std::pair<unsigned, std::string>>;

  void translateBody(PendingFn &PF);
  BasicBlock *getOrCreateBlock(Body &B, const std::string &Name);
  void defineLocal(Body &B, const std::string &Name, Value *V,
                   bool Rename = true);
  Value *parseValueRef(Body &B, Type *Ty, DeferList *Defer, unsigned OpIdx);
  Value *parseTypedValue(Body &B, DeferList *Defer, unsigned OpIdx);
  void translateInstruction(Body &B, IRBuilder &Builder);
  Instruction *translateOpcode(Body &B, IRBuilder &Builder,
                               const std::string &Op, DeferList &Defer,
                               Value **AliasResult);
  Instruction *translateCall(Body &B, IRBuilder &Builder, DeferList &Defer);
  Instruction *translateGEP(Body &B, IRBuilder &Builder, DeferList &Defer);
  Instruction *translateSwitch(Body &B, IRBuilder &Builder, DeferList &Defer);
  void recordFixups(Body &B, Instruction *I, const DeferList &Defer,
                    unsigned Line);

  //===--------------------------------------------------------------------===//
  // Post-process pass (LLFrontend.cpp)
  //===--------------------------------------------------------------------===//

  void postProcessFunction(Body &B);
  void resolveFixups(Body &B);
  void remapSwitchPhis(Body &B);
};

} // namespace llvmmd

#endif // LLVMMD_FRONTEND_LLVM_LLIMPORTER_H
