//===- LLTypes.cpp - Type and constant translator -------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Maps the `.ll` type and constant surface onto the mini-IR: i1/i8/i16/
// i32/i64, float/double (both lower to the 64-bit Float type), `ptr`
// (including pre-opaque-pointer `T*` spellings), and one level of
// `[N x T]` arrays where the sites that accept them say so. Everything
// else throws the appropriate named reject for the enclosing function.
//
//===----------------------------------------------------------------------===//

#include "frontend/llvm/LLImporter.h"

#include <cstdlib>
#include <cstring>

using namespace llvmmd;

namespace {

/// Scalar .ll type keywords we refuse, mapped to the right reject class.
bool isRejectedScalarTypeWord(const std::string &W) {
  static const char *Words[] = {"half",  "bfloat", "fp128",    "x86_fp80",
                                "ppc_fp128", "x86_amx", "x86_mmx", "token",
                                "metadata", "label", "opaque"};
  for (const char *K : Words)
    if (W == K)
      return true;
  return false;
}

/// Parameter/return attributes (and their parenthesized forms) to skip.
bool isParamAttrWord(const std::string &W) {
  static const char *Words[] = {
      "noundef",    "nonnull",     "nocapture", "noalias",  "nofree",
      "readonly",   "readnone",    "writeonly", "signext",  "zeroext",
      "inreg",      "returned",    "nest",      "immarg",   "align",
      "dereferenceable", "dereferenceable_or_null", "sret", "byval",
      "byref",      "preallocated", "inalloca", "swiftself", "swifterror",
      "captures",   "range",       "noext",     "allocalign", "allocptr",
      "writable",   "dead_on_unwind", "dead_on_return", "initializes"};
  for (const char *K : Words)
    if (W == K)
      return true;
  return false;
}

} // namespace

bool LLImporter::atTypeStart() const {
  switch (tok().Kind) {
  case LLTok::LBracket:
  case LLTok::Less:
  case LLTok::LBrace:
    return true;
  case LLTok::LocalId:
    return true; // %struct.S — a (rejected) named type
  case LLTok::Word: {
    const std::string &W = tok().Text;
    if (W == "void" || W == "float" || W == "double" || W == "ptr")
      return true;
    if (W.size() >= 2 && W[0] == 'i') {
      for (size_t I = 1; I < W.size(); ++I)
        if (!std::isdigit(static_cast<unsigned char>(W[I])))
          return false;
      return true;
    }
    return isRejectedScalarTypeWord(W);
  }
  default:
    return false;
  }
}

Type *LLImporter::parseType() {
  Type *Ty = nullptr;
  switch (tok().Kind) {
  case LLTok::Less:
    reject(llreject::VectorType, "vector type");
  case LLTok::LBrace:
    reject(llreject::AggregateType, "literal struct type");
  case LLTok::LocalId:
    reject(llreject::AggregateType, "named type '%" + tok().Text + "'");
  case LLTok::LBracket:
    reject(llreject::AggregateType, "array type in scalar position");
  case LLTok::Word: {
    const std::string &W = tok().Text;
    if (W == "void")
      Ty = Ctx.getVoidTy();
    else if (W == "float" || W == "double")
      Ty = Ctx.getFloatTy();
    else if (W == "ptr")
      Ty = Ctx.getPtrTy();
    else if (W.size() >= 2 && W[0] == 'i') {
      unsigned Bits = static_cast<unsigned>(std::atoi(W.c_str() + 1));
      if (Bits == 1 || Bits == 8 || Bits == 16 || Bits == 32 || Bits == 64)
        Ty = Ctx.getIntTy(Bits);
      else
        reject(llreject::UnsupportedType, "integer type '" + W + "'");
    } else if (isRejectedScalarTypeWord(W)) {
      reject(llreject::UnsupportedType, "type '" + W + "'");
    }
    break;
  }
  default:
    break;
  }
  if (!Ty)
    fatal("expected type");
  advance();
  // Pre-opaque-pointer spellings: i32*, i8**, [4 x i32]* all mean ptr.
  if (tok().Kind == LLTok::Star) {
    while (tok().Kind == LLTok::Star)
      advance();
    return Ctx.getPtrTy();
  }
  return Ty;
}

LLImporter::LLType LLImporter::parseTypeOrArray() {
  LLType Out;
  if (tok().Kind == LLTok::LBracket) {
    advance();
    if (tok().Kind != LLTok::Int)
      fatal("expected array length");
    Out.Count = static_cast<uint64_t>(parseIntText(tok().Text));
    advance();
    if (!eatWord("x"))
      fatal("expected 'x' in array type");
    if (tok().Kind == LLTok::LBracket)
      reject(llreject::AggregateType, "nested array type");
    Out.Ty = parseType();
    if (Out.Ty->isVoid())
      fatal("array of void");
    expectTok(LLTok::RBracket, "']'");
    Out.IsArray = true;
    if (tok().Kind == LLTok::Star) { // [4 x i32]* is just ptr
      while (tok().Kind == LLTok::Star)
        advance();
      Out.Ty = Ctx.getPtrTy();
      Out.IsArray = false;
      Out.Count = 0;
    }
    return Out;
  }
  Out.Ty = parseType();
  return Out;
}

void LLImporter::skipParamAttrs() {
  while (tok().Kind == LLTok::Word && isParamAttrWord(tok().Text)) {
    bool WasAlign = tok().Text == "align";
    advance();
    if (tok().Kind == LLTok::LParen) {
      unsigned Depth = 1;
      advance();
      while (Depth && tok().Kind != LLTok::Eof) {
        if (tok().Kind == LLTok::LParen)
          ++Depth;
        else if (tok().Kind == LLTok::RParen)
          --Depth;
        advance();
      }
    } else if (WasAlign && tok().Kind == LLTok::Int) {
      advance();
    }
  }
}

int64_t LLImporter::parseIntText(const std::string &Text) const {
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Text.c_str(), &End, 10);
  if (!End || *End != '\0')
    fatal("malformed integer literal '" + Text + "'");
  // Out-of-range literals saturate via strtoll; the mini-IR canonicalizes
  // by sign extension anyway, so that is acceptable for an importer.
  return static_cast<int64_t>(V);
}

Constant *LLImporter::zeroOf(Type *Ty) {
  if (Ty->isInteger())
    return Ctx.getInt(Ty, 0);
  if (Ty->isFloat())
    return Ctx.getFloat(0.0);
  if (Ty->isPointer())
    return Ctx.getNullPtr();
  fatal("no zero value for type");
}

Constant *LLImporter::parseConstantLiteral(Type *Ty) {
  switch (tok().Kind) {
  case LLTok::Int: {
    int64_t V = parseIntText(tok().Text);
    advance();
    if (Ty->isInteger())
      return Ctx.getInt(Ty, V);
    if (Ty->isFloat()) // lenient: "double 1" means 1.0
      return Ctx.getFloat(static_cast<double>(V));
    reject(llreject::UnsupportedConstant, "integer literal for non-integer");
  }
  case LLTok::Float: {
    if (!Ty->isFloat())
      reject(llreject::UnsupportedConstant, "float literal for non-float");
    double V = std::strtod(tok().Text.c_str(), nullptr);
    advance();
    return Ctx.getFloat(V);
  }
  case LLTok::FloatHex: {
    if (!Ty->isFloat())
      reject(llreject::UnsupportedConstant, "float literal for non-float");
    const std::string &T = tok().Text; // 0x[KLMHR]?hexdigits
    if (T.size() > 2 && !std::isxdigit(static_cast<unsigned char>(T[2])))
      reject(llreject::UnsupportedType,
             "extended-precision float literal '" + T + "'");
    uint64_t Bits = std::strtoull(T.c_str() + 2, nullptr, 16);
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    advance();
    return Ctx.getFloat(V);
  }
  case LLTok::Word: {
    const std::string &W = tok().Text;
    if (W == "true" || W == "false") {
      if (!Ty->isInteger() || Ty->getBitWidth() != 1)
        reject(llreject::UnsupportedConstant, "i1 literal for non-i1");
      bool B = W == "true";
      advance();
      return Ctx.getBool(B);
    }
    if (W == "null") {
      if (!Ty->isPointer())
        reject(llreject::UnsupportedConstant, "null for non-pointer");
      advance();
      return Ctx.getNullPtr();
    }
    if (W == "undef" || W == "poison") {
      advance();
      return Ctx.getUndef(Ty);
    }
    if (W == "zeroinitializer") {
      advance();
      return zeroOf(Ty);
    }
    // getelementptr (...), bitcast (...), blockaddress(...), dso_local_equivalent...
    reject(llreject::UnsupportedConstant, "constant expression '" + W + "'");
  }
  case LLTok::GlobalId:
    // Handled by parseValueRef inside functions; in pure-literal positions
    // (global initializers) cross-global references are beyond the subset.
    reject(llreject::UnsupportedConstant,
           "global reference '@" + tok().Text + "' in initializer");
  default:
    fatal("expected constant");
  }
}
