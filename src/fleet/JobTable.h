//===- JobTable.h - Fleet job registry: dedup + subscribe -------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The router's job registry: every in-flight submission lives here from
/// admission until its JobDone (or Error) frame has been fanned out.
///
/// Two sharing behaviors fall out of the registry, both justified by the
/// engine's determinism (identical submissions under identical rules
/// produce byte-identical response frames):
///
///  * **Submit dedup** — a Submit whose module list hashes (and compares)
///    equal to a live job's joins that job's stream instead of running the
///    engine again. The duplicate submitter is answered with a JobId frame
///    naming the shared job; every response frame then fans out to all
///    subscribers.
///  * **Subscribe-many** — a Subscribe frame attaches to a live job by id,
///    replaying the already-streamed frames from a bounded per-job buffer
///    before the live tail. When the buffer had to be truncated (one job
///    streamed more than ReplayBufferBytes), late attaches are refused
///    with UnknownJob rather than handed a stream with a hole in it; a
///    duplicate Submit in that state runs a fresh job instead of joining.
///
/// Crash recovery uses the same determinism: when a worker dies mid-job
/// the dispatcher requeues the job and the table *skips* the data frames
/// that were already fanned out (the re-run reproduces them byte-for-byte),
/// so subscribers see each frame exactly once. The attempt budget bounds
/// the damage of a persistently-crashing job: past MaxJobAttempts the job
/// fails to every subscriber with a WorkerLost error.
///
/// Locking: TableLock guards the id/key/affinity maps; each job's
/// StreamLock serializes buffer appends, fan-out, and attach-replay so an
/// attach observes a clean prefix/tail boundary. Order: TableLock before
/// StreamLock, never the reverse.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_FLEET_JOBTABLE_H
#define LLVMMD_FLEET_JOBTABLE_H

#include "server/Protocol.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace llvmmd {

class JobTable {
public:
  /// One subscriber's write side. Returns false when the client is gone;
  /// the table then drops the sink (the job itself keeps running — its
  /// verdicts still warm the worker's store for everyone else).
  using Writer = std::function<bool(FrameType, const std::string &)>;

  struct Sink {
    Writer Write;
    bool Dead = false;
  };
  using SinkPtr = std::shared_ptr<Sink>;

  struct Config {
    /// Folded into every job key so two rule configurations can never
    /// dedup onto each other (the router re-checks at handshake anyway).
    uint64_t ConfigDigest = 0;
    /// Worker count the affinity map spreads keys over.
    unsigned Workers = 1;
    /// Byte bound on one job's replay buffer (frame payloads + headers).
    uint64_t ReplayBufferBytes = 8ull << 20;
    /// Total dispatch attempts per job (1 = no requeue after a crash).
    unsigned MaxJobAttempts = 2;
  };

  struct Job {
    uint64_t Id = 0;
    uint64_t Key = 0;
    SubmitPayload Req;
    /// Sticky assignment (set once at creation from the affinity map):
    /// requeues return to the same — restarted — worker, and a repeat of
    /// the same key lands where its verdicts are already warm.
    unsigned WorkerIndex = 0;

    // Everything below is guarded by StreamLock.
    std::mutex StreamLock;
    std::vector<std::pair<FrameType, std::string>> Buffer;
    uint64_t BufferBytes = 0;
    bool BufferTruncated = false;
    /// Data frames fanned out across all attempts; the requeue skip count.
    uint64_t DeliveredFrames = 0;
    /// Data frames seen from the worker in the current attempt.
    uint64_t SeenThisAttempt = 0;
    unsigned Attempts = 0;
    bool Finished = false;
    std::vector<SinkPtr> Subs;
  };
  using JobPtr = std::shared_ptr<Job>;

  /// Invoked with (jobId, created, replayedFrames) at the moment the reply
  /// frame must be written: for an attach, under the job's StreamLock so
  /// the reply precedes every replayed frame and the live tail.
  using ReplyFn = std::function<void(uint64_t, bool, uint32_t)>;

  explicit JobTable(Config C) : Cfg(C) {}

  JobTable(const JobTable &) = delete;
  JobTable &operator=(const JobTable &) = delete;

  /// The dedup key: module list (profile/name/text/fn-count) folded with
  /// the config digest.
  uint64_t keyOf(const SubmitPayload &Req) const;

  struct SubmitResult {
    JobPtr J;             ///< never null
    bool Created = false; ///< caller must enqueue J to worker J->WorkerIndex
    uint32_t ReplayedFrames = 0;
  };

  /// Dedup-or-create. On dedup, \p Reply runs and the buffer replays to
  /// \p S before any live frame can interleave; on create, \p Reply runs
  /// with the fresh id (no frames exist yet — the caller enqueues after).
  SubmitResult submit(const SubmitPayload &Req, SinkPtr S,
                      const ReplyFn &Reply);

  /// Attach to a live job by id. Null when the job is unknown/finished or
  /// its replay buffer was truncated (\p Error says which).
  JobPtr subscribeJob(uint64_t JobId, SinkPtr S, const ReplyFn &Reply,
                      std::string *Error);

  /// Dispatcher: a streaming attempt begins (counts against the budget and
  /// resets the skip cursor).
  void beginAttempt(const JobPtr &J);

  /// Dispatcher: one data frame (Function/ModuleReport/SuiteReport) from
  /// the worker, byte-unchanged. Frames already fanned out by a previous
  /// attempt are skipped; new ones are buffered and fanned out.
  void deliver(const JobPtr &J, FrameType T, const std::string &Payload);

  /// Dispatcher: the worker's JobDone arrived. The payload's JobId is
  /// rewritten to the router's before fan-out; the job leaves the table.
  void complete(const JobPtr &J, JobDonePayload Done);

  /// Dispatcher: the job is over without a JobDone (worker Error frame, or
  /// the attempt budget ran out). Fans an Error frame out and removes the
  /// job.
  void fail(const JobPtr &J, ErrorCode Code, const std::string &Msg);

  /// Dispatcher: the worker died mid-attempt. True = requeue (budget
  /// left); false = the job was failed to its subscribers with WorkerLost.
  bool requeueOrFail(const JobPtr &J);

  size_t liveJobs() const;

  struct Stats {
    uint64_t Created = 0;
    uint64_t Deduplicated = 0;
    uint64_t Subscribed = 0;
    uint64_t ReplayTruncations = 0;
    uint64_t FramesFanned = 0; ///< frame×subscriber sends (replays included)
  };
  Stats stats() const;

private:
  unsigned pickWorker(uint64_t Key);
  /// Fan one frame to every live sink of \p J. StreamLock must be held.
  void fanOutLocked(Job &J, FrameType T, const std::string &Payload);
  void finishLocked(std::unique_lock<std::mutex> &TableG, Job &J,
                    FrameType T, const std::string &Payload);

  Config Cfg;
  mutable std::mutex TableLock;
  std::unordered_map<uint64_t, JobPtr> ById;
  std::unordered_map<uint64_t, JobPtr> ByKey;
  std::unordered_map<uint64_t, unsigned> Affinity;
  unsigned NextWorker = 0;
  uint64_t NextJobId = 1;
  mutable std::mutex StatsLock;
  Stats Counters;
};

} // namespace llvmmd

#endif // LLVMMD_FLEET_JOBTABLE_H
