//===- FleetRouter.cpp - Sharded validation fleet front-end -------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetRouter.h"

#include "driver/VerdictStore.h"
#include "support/Http.h"
#include "support/Log.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <chrono>
#include <cstring>
#include <map>
#include <sstream>

#ifndef _WIN32
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace llvmmd;

FleetRouter::FleetRouter(FleetConfig Config) : Cfg(std::move(Config)) {
  if (Cfg.WorkerSocketPrefix.empty())
    Cfg.WorkerSocketPrefix =
        Cfg.UnixPath.empty() ? "llvmmd-fleet" : Cfg.UnixPath;
}

FleetRouter::~FleetRouter() { stop(); }

uint64_t FleetRouter::configDigest() const {
  return verdictStoreConfigDigest(Cfg.Rules);
}

FleetCounters FleetRouter::counters() const {
  std::lock_guard<std::mutex> G(StatsLock);
  return Counters;
}

JobTable::Stats FleetRouter::tableStats() const {
  return Table ? Table->stats() : JobTable::Stats();
}

uint64_t FleetRouter::workerRestarts() const {
  return WM ? WM->restarts() : 0;
}

void FleetRouter::bumpCounter(uint64_t FleetCounters::*Field, uint64_t Delta) {
  std::lock_guard<std::mutex> G(StatsLock);
  Counters.*Field += Delta;
}

std::string FleetRouter::statsJSON() const {
  FleetCounters C = counters();
  JobTable::Stats T = tableStats();
  std::ostringstream OS;
  OS << "{\"schema\": \"llvmmd-fleet-stats-v1\""
     << ", \"workers\": " << Cfg.Workers
     << ", \"connections_accepted\": " << C.ConnectionsAccepted
     << ", \"handshakes_rejected\": " << C.HandshakesRejected
     << ", \"protocol_errors\": " << C.ProtocolErrors << ", \"jobs\": {"
     << "\"submitted\": " << C.JobsSubmitted
     << ", \"deduplicated\": " << C.JobsDeduplicated
     << ", \"dispatched\": " << C.JobsDispatched
     << ", \"completed\": " << C.JobsCompleted
     << ", \"errored\": " << C.JobsErrored
     << ", \"failed\": " << C.JobsFailed
     << ", \"requeued\": " << C.JobsRequeued
     << ", \"rejected\": " << C.JobsRejected
     << ", \"queue_depth\": " << QueuedJobs.load()
     << ", \"max_queue_depth\": " << C.MaxQueueDepth
     << ", \"live\": " << (Table ? Table->liveJobs() : 0) << '}'
     << ", \"subscribes\": " << C.Subscribes
     << ", \"unknown_job_errors\": " << C.UnknownJobErrors
     << ", \"replay_truncations\": " << T.ReplayTruncations
     << ", \"frames_fanned\": " << T.FramesFanned
     << ", \"worker_restarts\": " << (WM ? WM->restarts() : 0)
     << ", \"worker_health_kills\": " << (WM ? WM->healthKills() : 0)
     << ", \"worker_reconnects\": " << C.WorkerReconnects << "}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Fleet-wide /metrics roll-up
//===----------------------------------------------------------------------===//

namespace {

/// One metric family parsed out of a worker's text exposition: the
/// `# HELP` / `# TYPE` header plus its sample lines (re-labeled by the
/// caller). Same-name families from different workers merge so the
/// roll-up stays valid exposition format (one TYPE header per name).
struct ExpoFamily {
  std::string Help;
  std::string Type;
  std::vector<std::string> Samples;
};

/// Injects `worker="N"` as the first label of one sample line
/// (`name{labels} value` or `name value`).
std::string withWorkerLabel(const std::string &Line, unsigned Worker) {
  std::string Label = "worker=\"" + std::to_string(Worker) + "\"";
  size_t Brace = Line.find('{');
  size_t Space = Line.find(' ');
  if (Brace != std::string::npos && (Space == std::string::npos ||
                                     Brace < Space))
    return Line.substr(0, Brace + 1) + Label + "," + Line.substr(Brace + 1);
  if (Space == std::string::npos)
    return Line; // not a sample line; passed through untouched
  return Line.substr(0, Space) + "{" + Label + "}" + Line.substr(Space);
}

/// Parses a worker scrape into \p Families, appending each sample with
/// the worker label. `_bucket`/`_sum`/`_count` samples attach to their
/// histogram's family (the most recent TYPE header), exactly as the
/// exposition format groups them.
void mergeWorkerScrape(const std::string &Text, unsigned Worker,
                       std::vector<std::string> &Order,
                       std::map<std::string, ExpoFamily> &Families) {
  std::string Current;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Line.empty())
      continue;
    if (Line.rfind("# HELP ", 0) == 0 || Line.rfind("# TYPE ", 0) == 0) {
      size_t NameStart = 7;
      size_t NameEnd = Line.find(' ', NameStart);
      if (NameEnd == std::string::npos)
        continue;
      std::string Name = Line.substr(NameStart, NameEnd - NameStart);
      auto It = Families.find(Name);
      if (It == Families.end()) {
        Order.push_back(Name);
        It = Families.emplace(Name, ExpoFamily()).first;
      }
      std::string Rest = Line.substr(NameEnd + 1);
      if (Line[2] == 'H') {
        if (It->second.Help.empty())
          It->second.Help = Rest;
      } else if (It->second.Type.empty())
        It->second.Type = Rest;
      Current = Name;
      continue;
    }
    if (Line[0] == '#' || Current.empty())
      continue;
    Families[Current].Samples.push_back(withWorkerLabel(Line, Worker));
  }
}

} // namespace

std::string FleetRouter::metricsText() const {
  // Short-TTL cache with coalescing: a fresh sweep is served to everyone
  // who asks within the TTL, and scrapes racing a cache miss wait for the
  // one in-flight sweep instead of stampeding the workers. TTL 0 keeps
  // the coalescing but never serves stale text.
  const auto Ttl = std::chrono::milliseconds(Cfg.MetricsCacheTtlMs);
  std::unique_lock<std::mutex> G(MetricsCacheLock);
  for (;;) {
    if (MetricsCacheValid && Cfg.MetricsCacheTtlMs &&
        std::chrono::steady_clock::now() - MetricsCacheAt < Ttl)
      return MetricsCache;
    if (!MetricsRefreshInFlight)
      break;
    MetricsCacheCV.wait(G); // the in-flight sweep's result serves us too
  }
  MetricsRefreshInFlight = true;
  G.unlock();
  std::string Text = buildRollup();
  G.lock();
  MetricsCache = Text;
  MetricsCacheAt = std::chrono::steady_clock::now();
  MetricsCacheValid = true;
  MetricsRefreshInFlight = false;
  MetricsCacheCV.notify_all();
  return Text;
}

int FleetRouter::boundHttpPort() const {
  return Http ? Http->boundPort() : -1;
}

std::string FleetRouter::buildRollup() const {
  // The sweep count is itself a sample in the roll-up (bumped before the
  // snapshot below so each sweep sees itself); the delta between two
  // scrapes tells an operator how well the cache is coalescing.
  const_cast<FleetRouter *>(this)->bumpCounter(&FleetCounters::MetricsSweeps);
  FleetCounters C = counters();
  JobTable::Stats T = tableStats();

  std::ostringstream OS;
  auto Emit = [&OS](const char *Name, const char *Type, const char *Help,
                    uint64_t Value) {
    OS << "# HELP " << Name << " " << Help << "\n# TYPE " << Name << " "
       << Type << "\n"
       << Name << " " << Value << "\n";
  };
  Emit("llvmmd_fleet_workers", "gauge", "Configured worker processes",
       Cfg.Workers);
  Emit("llvmmd_fleet_queue_depth", "gauge",
       "Jobs queued across all dispatchers", QueuedJobs.load());
  Emit("llvmmd_fleet_jobs_submitted_total", "counter",
       "Jobs admitted by the router", C.JobsSubmitted);
  Emit("llvmmd_fleet_jobs_deduplicated_total", "counter",
       "Submissions deduplicated onto a running identical job",
       C.JobsDeduplicated);
  Emit("llvmmd_fleet_jobs_dispatched_total", "counter",
       "Dispatch attempts sent to workers", C.JobsDispatched);
  Emit("llvmmd_fleet_jobs_completed_total", "counter",
       "Jobs completed by workers", C.JobsCompleted);
  Emit("llvmmd_fleet_jobs_requeued_total", "counter",
       "Jobs requeued after a worker loss", C.JobsRequeued);
  Emit("llvmmd_fleet_jobs_failed_total", "counter",
       "Jobs failed with WorkerLost after the attempt budget",
       C.JobsFailed);
  Emit("llvmmd_fleet_worker_restarts_total", "counter",
       "Worker processes respawned by the monitor",
       WM ? WM->restarts() : 0);
  Emit("llvmmd_fleet_worker_health_kills_total", "counter",
       "Workers killed by the health check", WM ? WM->healthKills() : 0);
  Emit("llvmmd_fleet_worker_reconnects_total", "counter",
       "Dispatcher reconnects to (re)spawned workers", C.WorkerReconnects);
  Emit("llvmmd_fleet_frames_fanned_total", "counter",
       "Response frames fanned out to subscribers", T.FramesFanned);
  Emit("llvmmd_fleet_metrics_sweeps_total", "counter",
       "Worker metric sweeps performed (cache hits excluded)",
       C.MetricsSweeps);

  // Per-worker scrapes, preferably over the dispatchers' persistent
  // links: every dispatcher is asked up front (they scrape concurrently
  // between jobs), then each answer is collected against one shared
  // deadline. A dispatcher that is mid-job, drained, or whose link is
  // down answers late or not at all — those workers fall back to a fresh
  // dial, so a worker mid-respawn is simply reported down and the
  // roll-up stays useful while the monitor restarts it.
  std::vector<uint64_t> Targets(Cfg.Workers, 0);
  for (unsigned W = 0; W < Cfg.Workers && WM; ++W) {
    WorkerLink &L = *Links[W];
    std::lock_guard<std::mutex> LG(L.Lock);
    Targets[W] = ++L.ScrapeSeq;
    L.CV.notify_all();
  }
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);

  std::vector<std::string> Order;
  std::map<std::string, ExpoFamily> Families;
  std::string Up = "# HELP llvmmd_fleet_worker_up Worker scrape reachability "
                   "(1 = scraped)\n# TYPE llvmmd_fleet_worker_up gauge\n";
  for (unsigned W = 0; W < Cfg.Workers && WM; ++W) {
    WorkerLink &L = *Links[W];
    std::string Text, Err;
    bool Ok = false, Answered = false;
    {
      std::unique_lock<std::mutex> LG(L.Lock);
      Answered = L.CV.wait_until(
          LG, Deadline, [&] { return L.ScrapeDoneSeq >= Targets[W]; });
      if (Answered && L.ScrapeOk) {
        Ok = true;
        Text = L.ScrapeText;
      }
    }
    if (!Ok) {
      ServerClient Probe;
      Probe.MaxFrameBytes = Cfg.MaxFrameBytes;
      Probe.Retry.Retries = 2;
      Probe.Retry.BaseDelayMs = 5;
      Probe.Retry.MaxDelayMs = 20;
      Ok = Probe.connectUnix(WM->socketPath(W), &Err) &&
           Probe.handshake(configDigest(), nullptr, &Err) &&
           Probe.metrics(&Text, &Err);
    }
    Up += "llvmmd_fleet_worker_up{worker=\"" + std::to_string(W) + "\"} " +
          (Ok ? "1" : "0") + "\n";
    if (Ok)
      mergeWorkerScrape(Text, W, Order, Families);
    else
      logInfo("fleet", "metrics scrape of worker " + std::to_string(W) +
                           " failed: " + Err);
  }
  OS << Up;
  for (const std::string &Name : Order) {
    const ExpoFamily &F = Families[Name];
    if (!F.Help.empty())
      OS << "# HELP " << Name << " " << F.Help << "\n";
    if (!F.Type.empty())
      OS << "# TYPE " << Name << " " << F.Type << "\n";
    for (const std::string &S : F.Samples)
      OS << S << "\n";
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

bool FleetRouter::listenOn(int Fd, const std::string &What,
                           std::string *Error) {
#ifndef _WIN32
  if (Fd < 0 || ::listen(Fd, 64) != 0) {
    if (Error)
      *Error = "cannot listen on " + What;
    if (Fd >= 0)
      ::close(Fd);
    return false;
  }
  ListenFds.push_back(Fd);
  return true;
#else
  (void)Fd;
  (void)What;
  if (Error)
    *Error = "router sockets are POSIX-only";
  return false;
#endif
}

bool FleetRouter::start(std::string *Error) {
#ifndef _WIN32
  {
    std::lock_guard<std::mutex> G(LifeLock);
    if (Started) {
      if (Error)
        *Error = "router already started";
      return false;
    }
  }
  if (Cfg.UnixPath.empty() && Cfg.TcpPort < 0) {
    if (Error)
      *Error = "no listener configured (need UnixPath and/or TcpPort)";
    return false;
  }
  if (Cfg.Workers == 0) {
    if (Error)
      *Error = "a fleet needs at least one worker";
    return false;
  }

  if (!Cfg.UnixPath.empty()) {
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (Cfg.UnixPath.size() >= sizeof(Addr.sun_path)) {
      if (Error)
        *Error = "unix socket path too long: " + Cfg.UnixPath;
      return false;
    }
    std::strncpy(Addr.sun_path, Cfg.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ::unlink(Cfg.UnixPath.c_str());
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0 ||
        ::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      if (Error)
        *Error = "cannot bind unix socket '" + Cfg.UnixPath + "'";
      if (Fd >= 0)
        ::close(Fd);
      return false;
    }
    if (!listenOn(Fd, "unix socket '" + Cfg.UnixPath + "'", Error))
      return false;
  }

  if (Cfg.TcpPort >= 0) {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    int One = 1;
    if (Fd >= 0)
      ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(static_cast<uint16_t>(Cfg.TcpPort));
    if (Fd < 0 ||
        ::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      if (Error)
        *Error = "cannot bind 127.0.0.1:" + std::to_string(Cfg.TcpPort);
      if (Fd >= 0)
        ::close(Fd);
      return false;
    }
    socklen_t AddrLen = sizeof(Addr);
    ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen);
    BoundTcpPort = ntohs(Addr.sin_port);
    if (!listenOn(Fd, "tcp port " + std::to_string(BoundTcpPort), Error))
      return false;
  }

  // The /metrics sidecar binds before the workers spawn: a bad
  // --http-metrics address should fail fast, not after paying fleet
  // startup. The handler runs on the responder's own connection threads
  // and only ever calls the (internally locked) roll-up.
  if (!Cfg.HttpMetrics.empty()) {
    Http = std::make_unique<HttpServer>();
    Http->handle("/metrics", [this] {
      HttpResponse R;
      R.ContentType = PrometheusContentType;
      R.Body = metricsText();
      return R;
    });
    Http->handle("/healthz", [] {
      HttpResponse R;
      R.Body = "ok\n";
      return R;
    });
    if (!Http->start(Cfg.HttpMetrics, Error)) {
      Http.reset();
      for (int Fd : ListenFds)
        ::close(Fd);
      ListenFds.clear();
      if (!Cfg.UnixPath.empty())
        ::unlink(Cfg.UnixPath.c_str());
      return false;
    }
  }

  JobTable::Config TC;
  TC.ConfigDigest = configDigest();
  TC.Workers = Cfg.Workers;
  TC.ReplayBufferBytes = Cfg.ReplayBufferBytes;
  TC.MaxJobAttempts = Cfg.MaxJobAttempts;
  Table = std::make_unique<JobTable>(TC);

  WorkerManager::Config WC;
  WC.Binary = Cfg.WorkerBinary;
  WC.SocketPrefix = Cfg.WorkerSocketPrefix;
  WC.StoreBase = Cfg.StorePath;
  WC.Workers = Cfg.Workers;
  WC.WorkerThreads = Cfg.WorkerThreads;
  WC.Pipeline = Cfg.Pipeline;
  // Forward the mask only when it differs from the worker default, so the
  // workers' own digest computation stays the source of truth.
  WC.RuleMask = Cfg.Rules.Mask == RuleConfig().Mask ? ~0u : Cfg.Rules.Mask;
  WC.Triage = Cfg.Triage;
  WC.CheckpointEveryJobs = Cfg.CheckpointEveryJobs;
  WC.QueueBound = Cfg.MaxQueuedJobs;
  WC.ConfigDigest = configDigest();
  WC.PingIntervalMs = Cfg.PingIntervalMs;
  WC.PingTimeoutMs = Cfg.PingTimeoutMs;
  WC.HealthPing = Cfg.HealthPing;
  WM = std::make_unique<WorkerManager>(WC);
  if (!WM->start(Error)) {
    WM.reset();
    if (Http) {
      Http->stop();
      Http.reset();
    }
    for (int Fd : ListenFds)
      ::close(Fd);
    ListenFds.clear();
    if (!Cfg.UnixPath.empty())
      ::unlink(Cfg.UnixPath.c_str());
    return false;
  }

  Links.clear();
  for (unsigned W = 0; W < Cfg.Workers; ++W)
    Links.push_back(std::make_unique<WorkerLink>());

  Accepting = true;
  Started = true;
  Stopped = false;
  StopRequested = false;
  AcceptStop = false;
  DrainAndExit = false;
  AcceptThread = std::thread([this] { acceptLoop(); });
  for (unsigned W = 0; W < Cfg.Workers; ++W)
    Dispatchers.emplace_back([this, W] { dispatcherLoop(W); });
  return true;
#else
  if (Error)
    *Error = "the fleet router is POSIX-only";
  return false;
#endif
}

void FleetRouter::requestStop() {
  requestStopFromSignal();
  for (const auto &L : Links)
    L->CV.notify_all();
  LifeCV.notify_all();
}

void FleetRouter::stop() {
#ifndef _WIN32
  if (!Started || Stopped)
    return;
  requestStop();

  if (AcceptThread.joinable())
    AcceptThread.join();
  // Dispatchers drain their queues: every admitted job still completes (or
  // fails through its attempt budget) and its subscribers hear the end.
  for (std::thread &T : Dispatchers)
    if (T.joinable())
      T.join();
  Dispatchers.clear();

  // Workers shut down gracefully — they checkpoint their shards — and the
  // shards merge back into the base store.
  if (WM)
    WM->stop();

  {
    std::unique_lock<std::mutex> G(ConnLock);
    for (const auto &C : Conns) {
      std::lock_guard<std::mutex> WG(C->WriteLock);
      if (C->Fd >= 0)
        ::shutdown(C->Fd, SHUT_RDWR);
    }
    ConnDoneCV.wait(G, [this] { return Conns.empty(); });
  }

  for (int Fd : ListenFds)
    ::close(Fd);
  ListenFds.clear();
  if (!Cfg.UnixPath.empty())
    ::unlink(Cfg.UnixPath.c_str());

  // The HTTP responder outlives the drain so a scraper watching the
  // shutdown sees the final counters; it goes down last.
  if (Http)
    Http->stop();

  Stopped = true;
  LifeCV.notify_all();
#endif
}

void FleetRouter::wait() {
  {
    std::unique_lock<std::mutex> G(LifeLock);
    while (!LifeCV.wait_for(G, std::chrono::milliseconds(200), [this] {
      return StopRequested.load() || Stopped.load();
    }))
      ;
  }
  stop();
}

//===----------------------------------------------------------------------===//
// Client connections
//===----------------------------------------------------------------------===//

void FleetRouter::acceptLoop() {
#ifndef _WIN32
  std::vector<pollfd> Polls;
  for (int Fd : ListenFds)
    Polls.push_back({Fd, POLLIN, 0});
  while (!AcceptStop) {
    int N = ::poll(Polls.data(), Polls.size(), /*timeout_ms=*/100);
    if (N <= 0)
      continue;
    for (pollfd &P : Polls) {
      if (!(P.revents & POLLIN))
        continue;
      int Fd = ::accept(P.fd, nullptr, nullptr);
      if (Fd < 0)
        continue;
      // A client that stops reading must not park a dispatcher in a
      // blocking send forever (that would also wedge graceful shutdown).
      timeval SendTimeout{30, 0};
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &SendTimeout,
                   sizeof(SendTimeout));
      auto C = std::make_shared<Connection>();
      C->Fd = Fd;
      {
        std::lock_guard<std::mutex> G(ConnLock);
        C->Id = NextConnId++;
        Conns.push_back(C);
      }
      bumpCounter(&FleetCounters::ConnectionsAccepted);
      std::thread([this, C] { handleConnection(C); }).detach();
    }
  }
#endif
}

bool FleetRouter::sendFrame(Connection &C, FrameType T,
                            const std::string &Payload) {
  if (!C.Alive.load())
    return false;
  std::lock_guard<std::mutex> G(C.WriteLock);
  if (C.Fd < 0 || !writeFrame(C.Fd, T, Payload)) {
    C.Alive = false;
    return false;
  }
  return true;
}

void FleetRouter::sendError(Connection &C, ErrorCode Code,
                            const std::string &Msg) {
  ErrorPayload E;
  E.Code = Code;
  E.Message = Msg;
  sendFrame(C, FrameType::Error, encodeError(E));
}

void FleetRouter::handleConnection(std::shared_ptr<Connection> C) {
#ifndef _WIN32
  for (;;) {
    Frame F;
    ReadStatus RS = readFrame(C->Fd, F, Cfg.MaxFrameBytes);
    if (RS == ReadStatus::Eof)
      break;
    if (RS != ReadStatus::Ok) {
      bumpCounter(&FleetCounters::ProtocolErrors);
      sendError(*C, ErrorCode::Protocol,
                RS == ReadStatus::Oversized
                    ? "frame exceeds the size limit"
                    : "truncated or unreadable frame");
      break;
    }
    if (!handleFrame(C, F))
      break;
  }
  C->Alive = false;
  {
    std::lock_guard<std::mutex> WG(C->WriteLock);
    ::close(C->Fd);
    C->Fd = -1;
  }
  {
    std::lock_guard<std::mutex> G(ConnLock);
    for (size_t I = 0; I < Conns.size(); ++I) {
      if (Conns[I].get() == C.get()) {
        Conns.erase(Conns.begin() + I);
        break;
      }
    }
    ConnDoneCV.notify_all();
  }
#endif
}

bool FleetRouter::handleFrame(const std::shared_ptr<Connection> &C,
                              const Frame &F) {
  if (!C->Handshaken) {
    if (F.Type != FrameType::Hello) {
      bumpCounter(&FleetCounters::ProtocolErrors);
      sendError(*C, ErrorCode::Protocol, "expected Hello");
      return false;
    }
    HelloPayload H;
    if (!decodeHello(F.Payload, H)) {
      bumpCounter(&FleetCounters::ProtocolErrors);
      sendError(*C, ErrorCode::Protocol, "undecodable Hello");
      return false;
    }
    if (H.Version != ServerProtocolVersion) {
      bumpCounter(&FleetCounters::HandshakesRejected);
      sendError(*C, ErrorCode::Handshake,
                "protocol version " + std::to_string(H.Version) +
                    " (router speaks " +
                    std::to_string(ServerProtocolVersion) + ")");
      return false;
    }
    if (H.ConfigDigest != configDigest()) {
      bumpCounter(&FleetCounters::HandshakesRejected);
      sendError(*C, ErrorCode::Handshake,
                "config digest mismatch: the fleet validates under a "
                "different rule configuration");
      return false;
    }
    HelloOkPayload Ok;
    Ok.ConfigDigest = configDigest();
    Ok.EngineThreads = Cfg.Workers; // serving parallelism, not one engine's
    Ok.TriageEnabled = Cfg.Triage;
    C->Handshaken = true;
    return sendFrame(*C, FrameType::HelloOk, encodeHelloOk(Ok));
  }

  switch (F.Type) {
  case FrameType::Submit: {
    SubmitPayload S;
    if (!decodeSubmit(F.Payload, S) || S.Modules.empty()) {
      bumpCounter(&FleetCounters::ProtocolErrors);
      sendError(*C, ErrorCode::Protocol, "undecodable or empty Submit");
      return false;
    }
    if (!Accepting || QueuedJobs.load() >= Cfg.MaxQueuedJobs) {
      bumpCounter(&FleetCounters::JobsRejected);
      sendError(*C, ErrorCode::QueueFull,
                !Accepting ? "fleet is shutting down"
                           : "queue full (" +
                                 std::to_string(QueuedJobs.load()) +
                                 " jobs pending)");
      return true;
    }
    // The fleet's front door mints the trace id: when the router is
    // tracing, every admitted job gets one (client-supplied ids are
    // kept), rides the Submit frame to the worker, and comes home on
    // JobDone with the worker's span blob.
    if (traceEnabled() && S.TraceId == 0)
      S.TraceId = traceMintTraceId();
    auto Sink = std::make_shared<JobTable::Sink>();
    std::shared_ptr<Connection> Keep = C;
    Sink->Write = [this, Keep](FrameType T, const std::string &P) {
      return sendFrame(*Keep, T, P);
    };
    // The reply callback runs before any replayed/live frame can reach
    // this sink, so the client always reads Accepted/JobId first.
    auto Reply = [&](uint64_t Id, bool Created, uint32_t Replayed) {
      if (Created) {
        AcceptedPayload A;
        A.JobId = Id;
        A.QueuePosition = static_cast<uint32_t>(QueuedJobs.load());
        sendFrame(*C, FrameType::Accepted, encodeAccepted(A));
      } else {
        JobIdPayload JI;
        JI.JobId = Id;
        JI.Deduplicated = 1;
        JI.ReplayedFrames = Replayed;
        sendFrame(*C, FrameType::JobId, encodeJobId(JI));
      }
    };
    JobTable::SubmitResult R = Table->submit(S, std::move(Sink), Reply);
    if (R.Created) {
      bumpCounter(&FleetCounters::JobsSubmitted);
      enqueue(R.J);
    } else {
      bumpCounter(&FleetCounters::JobsDeduplicated);
    }
    return true;
  }
  case FrameType::Subscribe: {
    SubscribePayload SP;
    if (!decodeSubscribe(F.Payload, SP)) {
      bumpCounter(&FleetCounters::ProtocolErrors);
      sendError(*C, ErrorCode::Protocol, "undecodable Subscribe");
      return false;
    }
    auto Sink = std::make_shared<JobTable::Sink>();
    std::shared_ptr<Connection> Keep = C;
    Sink->Write = [this, Keep](FrameType T, const std::string &P) {
      return sendFrame(*Keep, T, P);
    };
    auto Reply = [&](uint64_t Id, bool, uint32_t Replayed) {
      JobIdPayload JI;
      JI.JobId = Id;
      JI.Deduplicated = 0;
      JI.ReplayedFrames = Replayed;
      sendFrame(*C, FrameType::JobId, encodeJobId(JI));
    };
    std::string Err;
    if (!Table->subscribeJob(SP.JobId, std::move(Sink), Reply, &Err)) {
      bumpCounter(&FleetCounters::UnknownJobErrors);
      sendError(*C, ErrorCode::UnknownJob, Err);
      return true;
    }
    bumpCounter(&FleetCounters::Subscribes);
    return true;
  }
  case FrameType::Stats:
    return sendFrame(*C, FrameType::StatsReply, statsJSON());
  case FrameType::Metrics:
    return sendFrame(*C, FrameType::MetricsReply, metricsText());
  case FrameType::Ping:
    return sendFrame(*C, FrameType::Pong, std::string());
  case FrameType::Shutdown:
    requestStop();
    return true;
  default:
    bumpCounter(&FleetCounters::ProtocolErrors);
    sendError(*C, ErrorCode::Protocol, "unexpected frame type");
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Dispatch: one thread per worker
//===----------------------------------------------------------------------===//

void FleetRouter::enqueue(const JobTable::JobPtr &J) {
  WorkerLink &L = *Links[J->WorkerIndex];
  uint64_t Depth = ++QueuedJobs;
  {
    std::lock_guard<std::mutex> G(L.Lock);
    L.Queue.push_back(J);
  }
  L.CV.notify_all();
  std::lock_guard<std::mutex> G(StatsLock);
  if (Depth > Counters.MaxQueueDepth)
    Counters.MaxQueueDepth = Depth;
}

void FleetRouter::dispatcherLoop(unsigned W) {
  WorkerLink &L = *Links[W];
  for (;;) {
    JobTable::JobPtr J;
    {
      std::unique_lock<std::mutex> G(L.Lock);
      // Bounded wait: the signal-safe stop path stores flags without a
      // notify.
      while (!L.CV.wait_for(G, std::chrono::milliseconds(200), [&] {
        return DrainAndExit.load() || !L.Queue.empty() ||
               L.ScrapeDoneSeq < L.ScrapeSeq;
      }))
        ;
      if (L.ScrapeDoneSeq < L.ScrapeSeq) {
        // A scrape is waiting on the persistent link; it is quick, so it
        // goes first, and the loop re-checks for a job right after.
        G.unlock();
        serviceScrape(W);
        continue;
      }
      if (L.Queue.empty()) {
        if (DrainAndExit)
          break;
        continue;
      }
      J = L.Queue.front();
      L.Queue.pop_front();
    }
    --QueuedJobs;
    runJobOnWorker(W, J);
  }
  // A roll-up racing the drain must not wait out its deadline on a
  // dispatcher that will never answer.
  {
    std::lock_guard<std::mutex> G(L.Lock);
    L.ScrapeDoneSeq = L.ScrapeSeq;
    L.ScrapeOk = false;
    L.ScrapeText.clear();
  }
  L.CV.notify_all();
  L.Client.reset();
}

void FleetRouter::serviceScrape(unsigned W) {
  WorkerLink &L = *Links[W];
  uint64_t Target;
  {
    std::lock_guard<std::mutex> G(L.Lock);
    if (L.ScrapeDoneSeq >= L.ScrapeSeq)
      return;
    Target = L.ScrapeSeq;
  }
  // Reuse the persistent link only when it already exists for the live
  // worker generation: a scrape must never pay the reconnect retry
  // schedule (the roll-up's fresh-dial fallback covers a down link), and
  // answering "no" fast beats answering "yes" slowly.
  std::string Text, Err;
  bool Ok = false;
  if (L.Client && WM && L.ConnectedGen == WM->generation(W)) {
    Ok = L.Client->metrics(&Text, &Err);
    if (!Ok)
      L.Client.reset(); // poisoned link; the next job redials
  }
  {
    std::lock_guard<std::mutex> G(L.Lock);
    L.ScrapeDoneSeq = Target;
    L.ScrapeOk = Ok;
    L.ScrapeText = std::move(Text);
  }
  L.CV.notify_all();
}

bool FleetRouter::ensureWorkerLink(unsigned W, std::string *Error) {
  WorkerLink &L = *Links[W];
  uint64_t Gen = WM->generation(W);
  // The cached connection is only trusted if the worker generation it was
  // made against is still alive *and* it still answers: a kill -9'd worker
  // leaves a connected-looking socket that fails on first use.
  if (L.Client && L.ConnectedGen == Gen && L.Client->ping())
    return true;
  L.Client.reset();

  // The whole sequence retries as a unit, not just connect(): a connect to
  // a just-SIGKILLed worker can land in the dead listener's backlog and
  // *succeed*, only to be reset on the first handshake read — and the
  // half-restarted worker can transiently answer with a pid the manager
  // has not published yet. Ride the schedule out until the monitor's
  // respawn (reap + rebind within ~100ms) is actually serving.
  ServerClient::RetryPolicy Rounds;
  Rounds.Retries = 16;
  Rounds.BaseDelayMs = 5;
  Rounds.MaxDelayMs = 500;
  for (unsigned Attempt = 0;; ++Attempt) {
    auto C = std::make_unique<ServerClient>();
    C->MaxFrameBytes = Cfg.MaxFrameBytes;
    // Quick per-connect retries only; the outer loop owns the pacing.
    C->Retry.Retries = 3;
    C->Retry.BaseDelayMs = 5;
    C->Retry.MaxDelayMs = 50;
    if (C->connectUnix(WM->socketPath(W), Error) &&
        C->handshake(configDigest(), nullptr, Error)) {
      WorkerHelloPayload WH;
#ifndef _WIN32
      WH.RouterId = static_cast<uint64_t>(::getpid());
#endif
      WH.WorkerIndex = W;
      WH.Generation = WM->generation(W);
      WorkerHelloOkPayload Ok;
      if (C->workerHello(WH, &Ok, Error)) {
        if (Ok.Pid == static_cast<uint64_t>(WM->pid(W))) {
          L.Client = std::move(C);
          L.ConnectedGen = WM->generation(W);
          bumpCounter(&FleetCounters::WorkerReconnects);
          return true;
        }
        if (Error)
          *Error = "worker " + std::to_string(W) +
                   " socket answered with a foreign pid";
      }
    }
    if (Attempt >= Rounds.Retries)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        ServerClient::retryDelayMs(Rounds, Attempt)));
  }
}

void FleetRouter::runJobOnWorker(unsigned W, const JobTable::JobPtr &J) {
  WorkerLink &L = *Links[W];
  Table->beginAttempt(J);
  bumpCounter(&FleetCounters::JobsDispatched);
  // Explicit trace id: dispatcher threads run concurrent traced jobs, so
  // the process-global current id would be ambiguous here.
  TraceSpan DispatchSpan("dispatch", "fleet", J->Req.TraceId,
                         "worker " + std::to_string(W) + " job " +
                             std::to_string(J->Id));

  // Worker-lost epilogue: requeue at the front of this worker's queue (the
  // restarted worker picks it straight back up) until the attempt budget
  // is spent; then the job fails to its subscribers with WorkerLost.
  auto Lost = [&](const std::string &Why) {
    L.Client.reset();
    if (Table->requeueOrFail(J)) {
      bumpCounter(&FleetCounters::JobsRequeued);
      logWarn("fleet", "worker " + std::to_string(W) + " lost (" + Why +
                           "); job " + std::to_string(J->Id) + " requeued" +
                           traceLogTag(J->Req.TraceId));
      if (traceEnabled())
        traceCompleteEventForTrace(J->Req.TraceId, "requeue", "fleet",
                                   traceNowUs(), 0,
                                   "worker " + std::to_string(W));
      ++QueuedJobs;
      {
        std::lock_guard<std::mutex> G(L.Lock);
        L.Queue.push_front(J);
      }
      L.CV.notify_all();
    } else {
      bumpCounter(&FleetCounters::JobsFailed);
      logError("fleet", "worker " + std::to_string(W) + " lost (" + Why +
                            "); attempt budget spent, job " +
                            std::to_string(J->Id) +
                            " failed with WorkerLost" +
                            traceLogTag(J->Req.TraceId));
    }
  };

  std::string Err;
  if (!ensureWorkerLink(W, &Err))
    return Lost(Err.empty() ? "cannot connect" : Err);
  AcceptedPayload Acc;
  if (!L.Client->submit(J->Req, &Acc, &Err))
    return Lost(Err.empty() ? "submit failed" : Err);

  for (;;) {
    Frame F;
    // Raw frames on purpose: the payload bytes go to the subscribers
    // exactly as the worker produced them — that is what makes a fleet
    // suite report byte-identical to the batch path.
    ReadStatus RS = readFrame(L.Client->fd(), F, Cfg.MaxFrameBytes);
    if (RS != ReadStatus::Ok)
      return Lost("stream broken mid-job");
    switch (F.Type) {
    case FrameType::Function:
    case FrameType::ModuleReport:
    case FrameType::SuiteReport:
      Table->deliver(J, F.Type, F.Payload);
      break;
    case FrameType::JobDone: {
      JobDonePayload D;
      if (!decodeJobDone(F.Payload, D))
        return Lost("undecodable JobDone");
      // The worker ships its spans home on JobDone; merging them here is
      // what turns a fleet job into one flame across pids. A bad blob
      // only costs the worker's spans, never the job.
      if (D.TraceId && !D.TraceBlob.empty() && traceEnabled()) {
        std::string IngestErr;
        if (!traceIngestEvents(D.TraceBlob, &IngestErr))
          logWarn("fleet", "job " + std::to_string(J->Id) +
                               ": span blob rejected: " + IngestErr +
                               traceLogTag(D.TraceId));
      }
      Table->complete(J, D);
      bumpCounter(&FleetCounters::JobsCompleted);
      return;
    }
    case FrameType::Error: {
      // An in-protocol worker error (unknown profile, parse failure) is
      // the job's answer, not a worker failure: forward and finish.
      ErrorPayload E;
      if (!decodeError(F.Payload, E)) {
        E.Code = ErrorCode::Protocol;
        E.Message = "undecodable worker error";
      }
      Table->fail(J, E.Code, E.Message);
      bumpCounter(&FleetCounters::JobsErrored);
      return;
    }
    default:
      // A worker violating the protocol is a lost worker.
      return Lost("unexpected frame type " +
                  std::to_string(static_cast<unsigned>(F.Type)));
    }
  }
}
