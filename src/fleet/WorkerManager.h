//===- WorkerManager.h - Worker process lifecycle ---------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spawns and supervises the fleet's worker processes: N `validate_server`
/// daemons, each listening on a private unix socket and persisting to its
/// own verdict-store shard (`<base>.shard<i>`).
///
/// Supervision is a single monitor thread doing two things:
///
///  * **Reap + restart** — waitpid(WNOHANG) every tick; an exited worker
///    (crash, OOM kill, `kill -9`) is respawned on the same socket path
///    with a bumped generation counter. The router's dispatchers key their
///    cached connections on the generation, so a restart is observed as
///    "reconnect and requeue what was in flight", never as silent frame
///    loss.
///  * **Ping deadline** — every PingIntervalMs the monitor opens a short
///    connection to each worker (handshake + Ping with a receive timeout).
///    A worker that is alive as a process but not answering the protocol
///    (wedged accept loop, deadlocked executor) is SIGKILLed; the reap
///    path then restarts it. Losing a worker costs exactly the jobs in
///    flight on it — the fleet never follows it down.
///
/// Store lifecycle: start() unions any leftover shards into the base store
/// and seeds every shard from the merged base, so each worker loads the
/// full fleet history; stop() shuts workers down gracefully (they
/// checkpoint their shards) and merges the shards back into the base. A
/// fleet restarted on the same base store replays 100% warm.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_FLEET_WORKERMANAGER_H
#define LLVMMD_FLEET_WORKERMANAGER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/types.h>
#endif

namespace llvmmd {

class WorkerManager {
public:
  struct Config {
    /// The worker executable (a stock validate_server binary).
    std::string Binary = "./validate_server";
    /// Worker i listens on `SocketPrefix + ".w" + i`.
    std::string SocketPrefix = "llvmmd-fleet";
    /// Base verdict store; "" disables persistence. Worker i persists to
    /// VerdictStore::shardPath(StoreBase, i).
    std::string StoreBase;
    unsigned Workers = 2;
    /// Engine threads per worker (0 = the worker's hardware default).
    unsigned WorkerThreads = 1;
    std::string Pipeline;
    /// Rule mask passed to every worker via --rule-mask; ~0u = leave the
    /// worker on its default (paper) mask. Sharing strategy and fixpoint
    /// budget are not CLI-reachable, so only default values of those can be
    /// fleet-served — the start()-time handshake catches any mismatch.
    unsigned RuleMask = ~0u;
    bool Triage = false;
    unsigned CheckpointEveryJobs = 1;
    unsigned QueueBound = 64;
    /// The digest every handshake (ping + start verification) is gated on.
    uint64_t ConfigDigest = 0;
    unsigned PingIntervalMs = 500;
    unsigned PingTimeoutMs = 2000;
    bool HealthPing = true;
    /// Grace period for a worker to drain and exit after Shutdown before
    /// stop() escalates to SIGKILL.
    unsigned ShutdownGraceMs = 10000;
  };

  explicit WorkerManager(Config C);
  ~WorkerManager();

  WorkerManager(const WorkerManager &) = delete;
  WorkerManager &operator=(const WorkerManager &) = delete;

  /// Seeds the shards, spawns every worker, and verifies each one answers
  /// the handshake + WorkerHello with its own pid. False (with \p Error)
  /// when any worker cannot be brought up.
  bool start(std::string *Error = nullptr);

  /// Graceful stop: Shutdown frame to every worker (they checkpoint their
  /// shards on the way out), SIGKILL after the grace period, reap all,
  /// merge the shards into the base store.
  void stop();

  std::string socketPath(unsigned I) const;
  /// "" when persistence is off.
  std::string shardPath(unsigned I) const;

  unsigned count() const { return Cfg.Workers; }
  pid_t pid(unsigned I) const;
  uint64_t generation(unsigned I) const;

  /// SIGKILL worker \p I (tests and the kill-a-worker demo); the monitor
  /// reaps and restarts it.
  bool killWorker(unsigned I);

  uint64_t restarts() const { return Restarts.load(); }
  uint64_t healthKills() const { return HealthKills.load(); }

private:
  bool spawn(unsigned I, std::string *Error);
  bool verifyWorker(unsigned I, std::string *Error);
  void monitorLoop();
  bool pingWorker(unsigned I);
  void seedShards();
  void mergeShards();

  Config Cfg;
  struct Slot {
    pid_t Pid = -1;
    uint64_t Generation = 0;
    std::chrono::steady_clock::time_point LastPing;
  };
  mutable std::mutex Lock;
  std::vector<Slot> Slots;
  std::thread Monitor;
  std::atomic<bool> StopMonitor{false};
  std::atomic<bool> Started{false};
  std::atomic<uint64_t> Restarts{0};
  std::atomic<uint64_t> HealthKills{0};
};

} // namespace llvmmd

#endif // LLVMMD_FLEET_WORKERMANAGER_H
