//===- JobTable.cpp - Fleet job registry: dedup + subscribe -------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "fleet/JobTable.h"

#include "support/Hashing.h"

#include <algorithm>

using namespace llvmmd;

namespace {

/// Hash collisions must never merge two different submissions, so the key
/// match is confirmed field-by-field before deduping.
bool sameSubmission(const SubmitPayload &A, const SubmitPayload &B) {
  if (A.Modules.size() != B.Modules.size())
    return false;
  for (size_t I = 0; I < A.Modules.size(); ++I) {
    const SubmitModule &MA = A.Modules[I], &MB = B.Modules[I];
    if (MA.Source != MB.Source || MA.FnCount != MB.FnCount ||
        MA.Name != MB.Name || MA.Text != MB.Text)
      return false;
  }
  return true;
}

} // namespace

uint64_t JobTable::keyOf(const SubmitPayload &Req) const {
  // encodeSubmit is deterministic (length-prefixed fields in order), so its
  // bytes are a faithful identity for the submission — after zeroing the
  // trace id, which names an observation of the job, not the job: two
  // identical suites submitted under different trace ids must still dedup
  // onto one engine run (sameSubmission likewise ignores it).
  SubmitPayload Canon = Req;
  Canon.TraceId = 0;
  std::string Bytes = encodeSubmit(Canon);
  return hashCombine(Cfg.ConfigDigest, hashBytes(Bytes.data(), Bytes.size()));
}

unsigned JobTable::pickWorker(uint64_t Key) {
  // Sticky round-robin: first sighting of a key takes the next wheel slot,
  // repeats go back to the worker whose store is already warm for it.
  auto It = Affinity.find(Key);
  if (It != Affinity.end())
    return It->second;
  unsigned W = Cfg.Workers ? NextWorker++ % Cfg.Workers : 0;
  Affinity.emplace(Key, W);
  return W;
}

void JobTable::fanOutLocked(Job &J, FrameType T, const std::string &Payload) {
  uint64_t Sent = 0;
  for (const SinkPtr &S : J.Subs) {
    if (S->Dead)
      continue;
    if (S->Write(T, Payload))
      ++Sent;
    else
      S->Dead = true; // the job keeps running for the other subscribers
  }
  J.Subs.erase(std::remove_if(J.Subs.begin(), J.Subs.end(),
                              [](const SinkPtr &S) { return S->Dead; }),
               J.Subs.end());
  if (Sent) {
    std::lock_guard<std::mutex> G(StatsLock);
    Counters.FramesFanned += Sent;
  }
}

JobTable::SubmitResult JobTable::submit(const SubmitPayload &Req, SinkPtr S,
                                        const ReplyFn &Reply) {
  uint64_t Key = keyOf(Req);
  // TableLock is held across the attach replay below. That serializes
  // admission behind one slow subscriber's socket in the worst case, but
  // the accept path caps send stalls (SO_SNDTIMEO) and the alternative —
  // dropping the table lock mid-attach — would let a racing duplicate
  // create a second job for the same key.
  std::unique_lock<std::mutex> TG(TableLock);
  auto It = ByKey.find(Key);
  if (It != ByKey.end() && sameSubmission(It->second->Req, Req)) {
    JobPtr J = It->second;
    std::lock_guard<std::mutex> SG(J->StreamLock);
    if (!J->Finished && !J->BufferTruncated) {
      uint32_t Replayed = static_cast<uint32_t>(J->Buffer.size());
      Reply(J->Id, /*Created=*/false, Replayed);
      uint64_t Sent = 0;
      for (const auto &F : J->Buffer) {
        if (!S->Write(F.first, F.second)) {
          S->Dead = true;
          break;
        }
        ++Sent;
      }
      if (!S->Dead)
        J->Subs.push_back(S);
      {
        std::lock_guard<std::mutex> G(StatsLock);
        ++Counters.Deduplicated;
        Counters.FramesFanned += Sent;
      }
      return {J, false, Replayed};
    }
    // The live job's replay window was exceeded: this subscriber cannot be
    // given a complete stream, so it gets a job of its own (the engine is
    // warm by now — the re-run is a replay, not a recomputation).
  }

  JobPtr J = std::make_shared<Job>();
  J->Key = Key;
  J->Req = Req;
  J->Id = NextJobId++;
  J->WorkerIndex = pickWorker(Key);
  J->Subs.push_back(std::move(S));
  ById.emplace(J->Id, J);
  ByKey[Key] = J; // may shadow a truncated job; its finish checks identity
  Reply(J->Id, /*Created=*/true, 0);
  {
    std::lock_guard<std::mutex> G(StatsLock);
    ++Counters.Created;
  }
  return {J, true, 0};
}

JobTable::JobPtr JobTable::subscribeJob(uint64_t JobId, SinkPtr S,
                                        const ReplyFn &Reply,
                                        std::string *Error) {
  std::unique_lock<std::mutex> TG(TableLock);
  auto It = ById.find(JobId);
  if (It == ById.end()) {
    if (Error)
      *Error = "job " + std::to_string(JobId) + " is not running";
    return nullptr;
  }
  JobPtr J = It->second;
  std::lock_guard<std::mutex> SG(J->StreamLock);
  if (J->BufferTruncated) {
    if (Error)
      *Error = "job " + std::to_string(JobId) +
               ": replay window exceeded, cannot attach mid-stream";
    return nullptr;
  }
  uint32_t Replayed = static_cast<uint32_t>(J->Buffer.size());
  Reply(J->Id, /*Created=*/false, Replayed);
  uint64_t Sent = 0;
  for (const auto &F : J->Buffer) {
    if (!S->Write(F.first, F.second)) {
      S->Dead = true;
      break;
    }
    ++Sent;
  }
  if (!S->Dead)
    J->Subs.push_back(std::move(S));
  {
    std::lock_guard<std::mutex> G(StatsLock);
    ++Counters.Subscribed;
    Counters.FramesFanned += Sent;
  }
  return J;
}

void JobTable::beginAttempt(const JobPtr &J) {
  std::lock_guard<std::mutex> SG(J->StreamLock);
  ++J->Attempts;
  J->SeenThisAttempt = 0;
}

void JobTable::deliver(const JobPtr &J, FrameType T,
                       const std::string &Payload) {
  std::lock_guard<std::mutex> SG(J->StreamLock);
  ++J->SeenThisAttempt;
  // A requeued job re-produces its stream from the start (engine
  // determinism); everything already fanned out is skipped so subscribers
  // see each frame exactly once.
  if (J->SeenThisAttempt <= J->DeliveredFrames)
    return;
  ++J->DeliveredFrames;
  if (!J->BufferTruncated) {
    J->BufferBytes += Payload.size() + 8; // payload + frame header estimate
    if (J->BufferBytes > Cfg.ReplayBufferBytes) {
      // Past the window nothing can attach anymore; keeping a partial
      // buffer would only invite replaying a stream with a hole in it.
      J->Buffer.clear();
      J->Buffer.shrink_to_fit();
      J->BufferTruncated = true;
      std::lock_guard<std::mutex> G(StatsLock);
      ++Counters.ReplayTruncations;
    } else {
      J->Buffer.emplace_back(T, Payload);
    }
  }
  fanOutLocked(*J, T, Payload);
}

void JobTable::finishLocked(std::unique_lock<std::mutex> &TableG, Job &J,
                            FrameType T, const std::string &Payload) {
  ById.erase(J.Id);
  auto It = ByKey.find(J.Key);
  if (It != ByKey.end() && It->second.get() == &J)
    ByKey.erase(It);
  std::lock_guard<std::mutex> SG(J.StreamLock);
  TableG.unlock(); // the final fan-out needs no table state
  fanOutLocked(J, T, Payload);
  J.Finished = true;
  J.Subs.clear();
}

void JobTable::complete(const JobPtr &J, JobDonePayload Done) {
  // The worker numbered the job in its own space; subscribers know the
  // router's id. The span blob is the router's to merge, not the
  // subscribers' to re-parse — it is stripped here (the dispatcher has
  // already ingested it), while the trace id itself fans out so a traced
  // client can join its JobDone to the merged flame. Everything else in
  // the payload is forwarded untouched.
  Done.JobId = J->Id;
  Done.TraceBlob.clear();
  std::unique_lock<std::mutex> TG(TableLock);
  finishLocked(TG, *J, FrameType::JobDone, encodeJobDone(Done));
}

void JobTable::fail(const JobPtr &J, ErrorCode Code, const std::string &Msg) {
  ErrorPayload E;
  E.Code = Code;
  E.Message = Msg;
  std::unique_lock<std::mutex> TG(TableLock);
  finishLocked(TG, *J, FrameType::Error, encodeError(E));
}

bool JobTable::requeueOrFail(const JobPtr &J) {
  unsigned Attempts;
  {
    std::lock_guard<std::mutex> SG(J->StreamLock);
    Attempts = J->Attempts;
  }
  if (Attempts < Cfg.MaxJobAttempts)
    return true;
  fail(J, ErrorCode::WorkerLost,
       "worker lost after " + std::to_string(Attempts) +
           " attempt(s); giving up on job " + std::to_string(J->Id));
  return false;
}

size_t JobTable::liveJobs() const {
  std::lock_guard<std::mutex> G(TableLock);
  return ById.size();
}

JobTable::Stats JobTable::stats() const {
  std::lock_guard<std::mutex> G(StatsLock);
  return Counters;
}
