//===- WorkerManager.cpp - Worker process lifecycle ---------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "fleet/WorkerManager.h"

#include "driver/VerdictStore.h"
#include "server/Protocol.h"
#include "server/ServerClient.h"

#include <cstdio>
#include <fstream>

#ifndef _WIN32
#include <csignal>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace llvmmd;

namespace {

#ifndef _WIN32
/// Bounds the monitor's protocol probes: a wedged worker must not wedge
/// the monitor with it.
void setRecvTimeout(int Fd, unsigned Ms) {
  timeval Tv;
  Tv.tv_sec = Ms / 1000;
  Tv.tv_usec = static_cast<suseconds_t>((Ms % 1000) * 1000);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}
#endif

/// Byte-copy \p From over \p To (both verdict stores; the format is
/// self-contained, so a file copy is a valid seed).
bool copyFile(const std::string &From, const std::string &To) {
  std::ifstream In(From, std::ios::binary);
  if (!In)
    return false;
  std::ofstream Out(To, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << In.rdbuf();
  return static_cast<bool>(Out);
}

} // namespace

WorkerManager::WorkerManager(Config C) : Cfg(std::move(C)) {
  Slots.resize(Cfg.Workers);
}

WorkerManager::~WorkerManager() { stop(); }

std::string WorkerManager::socketPath(unsigned I) const {
  return Cfg.SocketPrefix + ".w" + std::to_string(I);
}

std::string WorkerManager::shardPath(unsigned I) const {
  return Cfg.StoreBase.empty() ? std::string()
                               : VerdictStore::shardPath(Cfg.StoreBase, I);
}

pid_t WorkerManager::pid(unsigned I) const {
  std::lock_guard<std::mutex> G(Lock);
  return I < Slots.size() ? Slots[I].Pid : -1;
}

uint64_t WorkerManager::generation(unsigned I) const {
  std::lock_guard<std::mutex> G(Lock);
  return I < Slots.size() ? Slots[I].Generation : 0;
}

bool WorkerManager::killWorker(unsigned I) {
#ifndef _WIN32
  pid_t P = pid(I);
  return P > 0 && ::kill(P, SIGKILL) == 0;
#else
  (void)I;
  return false;
#endif
}

//===----------------------------------------------------------------------===//
// Store seeding and merging
//===----------------------------------------------------------------------===//

void WorkerManager::seedShards() {
  if (Cfg.StoreBase.empty())
    return;
  // Union whatever the last fleet left behind — a cleanly-drained fleet
  // already merged, but a crashed one may hold verdicts only in its shards.
  // Inputs that fail to load (missing, stale version, different rules)
  // contribute nothing; the workers rebuild those verdicts.
  std::vector<std::string> Inputs;
  for (unsigned I = 0; I < Cfg.Workers; ++I) {
    VerdictStore::HeaderInfo HI = VerdictStore::peekHeader(shardPath(I));
    if (HI.ok() && HI.ConfigDigest == Cfg.ConfigDigest)
      Inputs.push_back(shardPath(I));
  }
  VerdictStore::HeaderInfo Base = VerdictStore::peekHeader(Cfg.StoreBase);
  if (Base.ok() && Base.ConfigDigest == Cfg.ConfigDigest)
    Inputs.push_back(Cfg.StoreBase);
  if (!Inputs.empty())
    VerdictStore::mergePaths(Inputs, Cfg.StoreBase, Cfg.ConfigDigest);
  // Every worker starts from the full fleet history: with cold shards a
  // restarted fleet would only be warm for keys that happen to land on the
  // worker that proved them last time.
  Base = VerdictStore::peekHeader(Cfg.StoreBase);
  if (Base.ok() && Base.ConfigDigest == Cfg.ConfigDigest)
    for (unsigned I = 0; I < Cfg.Workers; ++I)
      copyFile(Cfg.StoreBase, shardPath(I));
}

void WorkerManager::mergeShards() {
  if (Cfg.StoreBase.empty())
    return;
  std::vector<std::string> Inputs;
  for (unsigned I = 0; I < Cfg.Workers; ++I) {
    VerdictStore::HeaderInfo HI = VerdictStore::peekHeader(shardPath(I));
    if (HI.ok() && HI.ConfigDigest == Cfg.ConfigDigest)
      Inputs.push_back(shardPath(I));
  }
  if (!Inputs.empty())
    // mergePaths saves with merge-on-save, so the base's own entries
    // survive even if no shard re-proved them.
    VerdictStore::mergePaths(Inputs, Cfg.StoreBase, Cfg.ConfigDigest);
}

//===----------------------------------------------------------------------===//
// Spawning
//===----------------------------------------------------------------------===//

bool WorkerManager::spawn(unsigned I, std::string *Error) {
#ifndef _WIN32
  std::string Sock = socketPath(I);
  ::unlink(Sock.c_str());

  std::vector<std::string> Args;
  Args.push_back(Cfg.Binary);
  Args.push_back("--listen");
  Args.push_back(Sock);
  Args.push_back("--queue");
  Args.push_back(std::to_string(Cfg.QueueBound));
  Args.push_back("--checkpoint");
  Args.push_back(std::to_string(Cfg.CheckpointEveryJobs));
  Args.push_back("--quiet");
  if (Cfg.WorkerThreads) {
    Args.push_back("--threads");
    Args.push_back(std::to_string(Cfg.WorkerThreads));
  }
  if (!Cfg.Pipeline.empty()) {
    Args.push_back("--pipeline");
    Args.push_back(Cfg.Pipeline);
  }
  if (Cfg.RuleMask != ~0u) {
    Args.push_back("--rule-mask");
    Args.push_back(std::to_string(Cfg.RuleMask));
  }
  if (Cfg.Triage)
    Args.push_back("--triage");
  if (!Cfg.StoreBase.empty()) {
    Args.push_back("--cache");
    Args.push_back(shardPath(I));
  }
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);

  pid_t Child = ::fork();
  if (Child < 0) {
    if (Error)
      *Error = "cannot fork worker " + std::to_string(I);
    return false;
  }
  if (Child == 0) {
    // Worker stdio goes nowhere: it runs --quiet, and a worker must never
    // interleave bytes into the router's own streams.
    int Null = ::open("/dev/null", O_RDWR);
    if (Null >= 0) {
      ::dup2(Null, 0);
      ::dup2(Null, 1);
      ::dup2(Null, 2);
      if (Null > 2)
        ::close(Null);
    }
    ::execv(Argv[0], Argv.data());
    _exit(127); // exec failed; the parent's verify step reports it
  }
  Slots[I].Pid = Child;
  ++Slots[I].Generation;
  Slots[I].LastPing = std::chrono::steady_clock::now();
  return true;
#else
  (void)I;
  if (Error)
    *Error = "the worker fleet is POSIX-only";
  return false;
#endif
}

bool WorkerManager::verifyWorker(unsigned I, std::string *Error) {
#ifndef _WIN32
  ServerClient C;
  // The worker was just exec'd; its socket appears when it binds. ENOENT /
  // ECONNREFUSED during that window are exactly what the retry policy is
  // for.
  C.Retry.Retries = 16;
  C.Retry.BaseDelayMs = 5;
  C.Retry.MaxDelayMs = 250;
  std::string Err;
  if (!C.connectUnix(socketPath(I), &Err)) {
    if (Error)
      *Error = "worker " + std::to_string(I) + ": " + Err;
    return false;
  }
  setRecvTimeout(C.fd(), Cfg.PingTimeoutMs);
  if (!C.handshake(Cfg.ConfigDigest, nullptr, &Err)) {
    if (Error)
      *Error = "worker " + std::to_string(I) + " handshake: " + Err;
    return false;
  }
  WorkerHelloPayload WH;
  WH.RouterId = static_cast<uint64_t>(::getpid());
  WH.WorkerIndex = I;
  WH.Generation = generation(I);
  WorkerHelloOkPayload Ok;
  if (!C.workerHello(WH, &Ok, &Err)) {
    if (Error)
      *Error = "worker " + std::to_string(I) + " identity: " + Err;
    return false;
  }
  if (Ok.Pid != static_cast<uint64_t>(pid(I))) {
    if (Error)
      *Error = "worker " + std::to_string(I) +
               " socket answered with a foreign pid (stale daemon?)";
    return false;
  }
  return true;
#else
  (void)I;
  if (Error)
    *Error = "the worker fleet is POSIX-only";
  return false;
#endif
}

bool WorkerManager::start(std::string *Error) {
#ifndef _WIN32
  if (Started) {
    if (Error)
      *Error = "worker manager already started";
    return false;
  }
  if (Cfg.Workers == 0) {
    if (Error)
      *Error = "a fleet needs at least one worker";
    return false;
  }
  seedShards();
  {
    std::lock_guard<std::mutex> G(Lock);
    for (unsigned I = 0; I < Cfg.Workers; ++I)
      if (!spawn(I, Error))
        return false;
  }
  // Fail fast and loudly when a worker cannot serve (bad binary path,
  // digest mismatch from an unsupported rule configuration) instead of
  // letting every later job time out against it.
  for (unsigned I = 0; I < Cfg.Workers; ++I)
    if (!verifyWorker(I, Error)) {
      Started = true; // stop() must clean up what was spawned
      stop();
      Started = false;
      return false;
    }
  StopMonitor = false;
  Monitor = std::thread([this] { monitorLoop(); });
  Started = true;
  return true;
#else
  if (Error)
    *Error = "the worker fleet is POSIX-only";
  return false;
#endif
}

//===----------------------------------------------------------------------===//
// Supervision
//===----------------------------------------------------------------------===//

bool WorkerManager::pingWorker(unsigned I) {
#ifndef _WIN32
  ServerClient C;
  // A couple of quick retries so a worker mid-restart (reaped a tick ago,
  // socket not bound yet) is not double-punished.
  C.Retry.Retries = 3;
  C.Retry.BaseDelayMs = 10;
  C.Retry.MaxDelayMs = 50;
  if (!C.connectUnix(socketPath(I)))
    return false;
  setRecvTimeout(C.fd(), Cfg.PingTimeoutMs);
  return C.handshake(Cfg.ConfigDigest) && C.ping();
#else
  (void)I;
  return false;
#endif
}

void WorkerManager::monitorLoop() {
#ifndef _WIN32
  while (!StopMonitor) {
    // Reap: an exited worker is restarted on its socket path. The bumped
    // generation tells dispatchers their cached connection is to a ghost.
    {
      std::lock_guard<std::mutex> G(Lock);
      for (unsigned I = 0; I < Slots.size() && !StopMonitor; ++I) {
        if (Slots[I].Pid <= 0)
          continue;
        int St = 0;
        if (::waitpid(Slots[I].Pid, &St, WNOHANG) == Slots[I].Pid) {
          Slots[I].Pid = -1;
          ++Restarts;
          spawn(I, nullptr);
        }
      }
    }
    // Ping deadline: protocol-dead-but-process-alive workers get SIGKILL;
    // the reap above turns that into a restart next tick.
    if (Cfg.HealthPing) {
      for (unsigned I = 0; I < Cfg.Workers && !StopMonitor; ++I) {
        pid_t P;
        uint64_t Gen;
        {
          std::lock_guard<std::mutex> G(Lock);
          auto Now = std::chrono::steady_clock::now();
          if (Now - Slots[I].LastPing <
              std::chrono::milliseconds(Cfg.PingIntervalMs))
            continue;
          Slots[I].LastPing = Now;
          P = Slots[I].Pid;
          Gen = Slots[I].Generation;
        }
        if (P <= 0 || pingWorker(I))
          continue;
        std::lock_guard<std::mutex> G(Lock);
        // Only kill the generation that failed the ping; a worker that
        // restarted underneath the probe is innocent.
        if (Slots[I].Pid == P && Slots[I].Generation == Gen) {
          ::kill(P, SIGKILL);
          ++HealthKills;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
#endif
}

void WorkerManager::stop() {
#ifndef _WIN32
  if (!Started)
    return;
  StopMonitor = true;
  if (Monitor.joinable())
    Monitor.join();

  // Graceful first: a Shutdown frame makes the worker drain and checkpoint
  // its shard, which is what keeps the restarted fleet 100% warm.
  for (unsigned I = 0; I < Cfg.Workers; ++I) {
    if (pid(I) <= 0)
      continue;
    ServerClient C;
    if (C.connectUnix(socketPath(I))) {
      setRecvTimeout(C.fd(), Cfg.PingTimeoutMs);
      if (C.handshake(Cfg.ConfigDigest))
        C.requestShutdown();
    }
  }
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(Cfg.ShutdownGraceMs);
  for (;;) {
    bool AnyAlive = false;
    {
      std::lock_guard<std::mutex> G(Lock);
      for (Slot &S : Slots) {
        if (S.Pid <= 0)
          continue;
        int St = 0;
        if (::waitpid(S.Pid, &St, WNOHANG) == S.Pid)
          S.Pid = -1;
        else
          AnyAlive = true;
      }
    }
    if (!AnyAlive || std::chrono::steady_clock::now() >= Deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  {
    std::lock_guard<std::mutex> G(Lock);
    for (Slot &S : Slots) {
      if (S.Pid <= 0)
        continue;
      ::kill(S.Pid, SIGKILL);
      int St = 0;
      ::waitpid(S.Pid, &St, 0);
      S.Pid = -1;
    }
  }
  for (unsigned I = 0; I < Cfg.Workers; ++I)
    ::unlink(socketPath(I).c_str());

  mergeShards();
  Started = false;
#endif
}
