//===- FleetRouter.h - Sharded validation fleet front-end -------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet's single front door: a router daemon that speaks the same
/// framed protocol as `validate_server` (clients — validate_client, the CI
/// scripts — cannot tell the difference), performs the digest-gated
/// handshake itself, and fans submissions out over a fleet of per-core
/// worker processes supervised by the WorkerManager.
///
/// The load-bearing invariant is *byte-identity*: a worker's response
/// frames are streamed back to the subscribers unchanged (only the JobDone
/// frame has its job id rewritten into the router's numbering), so a suite
/// report served by the fleet is byte-identical to `batch_validate --json`
/// over the same inputs and store state — the same bar the single server
/// already meets, now across process boundaries.
///
/// Structure (blocking I/O throughout, like the server):
///
///   * accept thread + one detached thread per client connection
///     (handshake, Submit/Subscribe/Stats/Ping/Shutdown);
///   * a JobTable deduplicating identical concurrent submissions onto one
///     engine run and letting Subscribe join a running job mid-flight
///     (bounded replay buffer, then the live tail);
///   * one dispatcher thread per worker owning that worker's connection
///     and its FIFO queue. Jobs stick to a worker by submission key, so a
///     repeated suite returns to the shard that already holds its
///     verdicts. A worker crash (`kill -9`) costs exactly the jobs in
///     flight on it: the dispatcher reconnects to the restarted worker
///     (generation-checked via WorkerHello) and requeues, skipping frames
///     already fanned out — determinism makes the re-run byte-identical —
///     until the per-job attempt budget is spent, at which point the job
///     fails with a WorkerLost error. The fleet itself never goes down
///     with a worker.
///
/// Store lifecycle is the WorkerManager's: shards seeded from the merged
/// base at start, checkpointed by the workers while serving, merged back
/// at drain — so a restarted fleet replays 100% warm.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_FLEET_FLEETROUTER_H
#define LLVMMD_FLEET_FLEETROUTER_H

#include "fleet/JobTable.h"
#include "fleet/WorkerManager.h"
#include "normalize/Rules.h"
#include "server/Protocol.h"
#include "server/ServerClient.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace llvmmd {

struct FleetConfig {
  /// Client-facing unix socket (unlinked before bind and on shutdown).
  std::string UnixPath;
  /// Client-facing loopback TCP: -1 = none, 0 = ephemeral.
  int TcpPort = -1;
  unsigned Workers = 2;
  /// Worker executable; a stock validate_server.
  std::string WorkerBinary = "./validate_server";
  /// Worker i listens on `WorkerSocketPrefix + ".w" + i`; "" derives the
  /// prefix from UnixPath.
  std::string WorkerSocketPrefix;
  /// Base verdict store ("" = no persistence); workers persist to
  /// per-worker shards that are merged back into it at drain.
  std::string StorePath;
  /// Engine threads per worker (0 = hardware default).
  unsigned WorkerThreads = 1;
  std::string Pipeline;
  /// Rule configuration the handshake digest is computed from. Only the
  /// mask is forwardable to workers; strategy/iterations must stay at
  /// their defaults (WorkerManager::start rejects the mismatch otherwise).
  RuleConfig Rules;
  bool Triage = false;
  unsigned CheckpointEveryJobs = 1;
  /// Admission bound on queued-not-yet-running jobs across the fleet.
  unsigned MaxQueuedJobs = 64;
  /// Total dispatch attempts per job (2 = one requeue after a crash).
  unsigned MaxJobAttempts = 2;
  uint64_t ReplayBufferBytes = 8ull << 20;
  unsigned PingIntervalMs = 500;
  unsigned PingTimeoutMs = 2000;
  bool HealthPing = true;
  uint32_t MaxFrameBytes = DefaultMaxFrameBytes;
  /// `HOST:PORT` for the embedded HTTP responder (GET /metrics +
  /// /healthz; empty = none, port 0 = ephemeral). A stock Prometheus can
  /// scrape the fleet-wide roll-up straight off the router.
  std::string HttpMetrics;
  /// How long one roll-up's worker sweep stays fresh: scrapes within the
  /// TTL are served from cache, and concurrent scrapes coalesce onto one
  /// in-flight sweep either way. 0 disables caching (every scrape
  /// sweeps). Kept short by default — a scrape is a view of "now".
  unsigned MetricsCacheTtlMs = 250;
};

struct FleetCounters {
  uint64_t ConnectionsAccepted = 0;
  uint64_t HandshakesRejected = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t JobsSubmitted = 0;    ///< jobs created (post-dedup)
  uint64_t JobsDeduplicated = 0; ///< Submits folded onto a live job
  uint64_t Subscribes = 0;
  uint64_t UnknownJobErrors = 0;
  uint64_t JobsRejected = 0; ///< admission control
  uint64_t JobsDispatched = 0; ///< attempts handed to a worker
  uint64_t JobsCompleted = 0;
  uint64_t JobsErrored = 0; ///< worker answered with an Error frame
  uint64_t JobsFailed = 0;  ///< attempt budget exhausted (WorkerLost)
  uint64_t JobsRequeued = 0;
  uint64_t WorkerReconnects = 0;
  uint64_t MaxQueueDepth = 0;
  /// Worker sweeps actually performed by the metrics roll-up; scrapes
  /// served from cache or coalesced onto an in-flight sweep don't count.
  uint64_t MetricsSweeps = 0;
};

class FleetRouter {
public:
  explicit FleetRouter(FleetConfig Config);
  ~FleetRouter();

  FleetRouter(const FleetRouter &) = delete;
  FleetRouter &operator=(const FleetRouter &) = delete;

  /// Binds the listeners, seeds and spawns the workers (failing loudly if
  /// any cannot serve), and starts the accept + dispatcher threads.
  bool start(std::string *Error = nullptr);

  /// Asynchronous graceful-stop trigger (see ValidationServer): admission
  /// closes, dispatchers drain, workers shut down and checkpoint, shards
  /// merge into the base store.
  void requestStop();

  /// Async-signal-safe stop subset: atomic stores only; all waiters poll.
  void requestStopFromSignal() {
    Accepting = false;
    DrainAndExit = true;
    AcceptStop = true;
    StopRequested = true;
  }

  /// Blocking stop. Must not be called from a router-owned thread.
  void stop();

  /// Blocks until a requested stop completes (daemon main loop).
  void wait();

  bool isStopped() const { return Stopped; }

  uint64_t configDigest() const;
  int boundTcpPort() const { return BoundTcpPort; }

  FleetCounters counters() const;
  JobTable::Stats tableStats() const;
  uint64_t workerRestarts() const;
  std::string statsJSON() const;
  /// The fleet-wide /metrics roll-up in Prometheus text exposition
  /// format: the router's own `llvmmd_fleet_*` families plus every live
  /// worker's scrape with its samples re-labeled `worker="N"` (same-name
  /// families from different workers merge into one `# TYPE` group).
  /// Served from a short-TTL cache (MetricsCacheTtlMs); on a miss, one
  /// sweep runs and concurrent scrapes wait for its result instead of
  /// sweeping again. The sweep asks each dispatcher to scrape over its
  /// persistent worker link (serviced between jobs), falling back to a
  /// fresh dial when the link is down or the dispatcher is mid-job.
  std::string metricsText() const;

  /// The HTTP responder's kernel-assigned port; -1 when HttpMetrics is
  /// unset or before start().
  int boundHttpPort() const;

  /// Test/demo access to the supervised workers (pids, kill).
  WorkerManager *workers() { return WM.get(); }

private:
  struct Connection {
    int Fd = -1;
    uint64_t Id = 0;
    std::mutex WriteLock;
    std::atomic<bool> Alive{true};
    bool Handshaken = false;
  };

  /// One worker's dispatch state: the FIFO of jobs routed to it and the
  /// dispatcher's cached connection (dispatcher-thread only).
  struct WorkerLink {
    std::mutex Lock;
    std::condition_variable CV;
    std::deque<JobTable::JobPtr> Queue;
    std::unique_ptr<ServerClient> Client;
    uint64_t ConnectedGen = 0;
    /// Scrape-request slot: the roll-up sweep bumps ScrapeSeq and the
    /// dispatcher — the only thread allowed to touch Client — answers
    /// between jobs, setting ScrapeDoneSeq/ScrapeOk/ScrapeText and
    /// notifying CV. A dispatcher that is mid-job simply doesn't answer
    /// before the requester's deadline, which then falls back to a fresh
    /// dial. Guarded by Lock.
    uint64_t ScrapeSeq = 0;
    uint64_t ScrapeDoneSeq = 0;
    bool ScrapeOk = false;
    std::string ScrapeText;
  };

  bool listenOn(int Fd, const std::string &What, std::string *Error);
  void acceptLoop();
  void handleConnection(std::shared_ptr<Connection> C);
  bool handleFrame(const std::shared_ptr<Connection> &C, const Frame &F);
  void dispatcherLoop(unsigned W);
  /// Dispatcher-thread only: answer a pending scrape request over the
  /// persistent link (if it is currently connected).
  void serviceScrape(unsigned W);
  /// One actual worker sweep + roll-up render (the cache miss path of
  /// metricsText).
  std::string buildRollup() const;
  /// One dispatch attempt; requeues or finishes the job itself.
  void runJobOnWorker(unsigned W, const JobTable::JobPtr &J);
  bool ensureWorkerLink(unsigned W, std::string *Error);
  void enqueue(const JobTable::JobPtr &J);
  bool sendFrame(Connection &C, FrameType T, const std::string &Payload);
  void sendError(Connection &C, ErrorCode Code, const std::string &Msg);
  void bumpCounter(uint64_t FleetCounters::*Field, uint64_t Delta = 1);

  FleetConfig Cfg;
  std::unique_ptr<JobTable> Table;
  std::unique_ptr<WorkerManager> WM;
  std::vector<std::unique_ptr<WorkerLink>> Links;
  /// The /metrics + /healthz sidecar (HttpMetrics config); null when off.
  std::unique_ptr<class HttpServer> Http;

  /// Roll-up cache: one sweep's rendered text plus its timestamp, and the
  /// in-flight flag that coalesces concurrent cache misses onto a single
  /// sweep. All guarded by MetricsCacheLock (mutable: metricsText is
  /// logically const).
  mutable std::mutex MetricsCacheLock;
  mutable std::condition_variable MetricsCacheCV;
  mutable std::string MetricsCache;
  mutable std::chrono::steady_clock::time_point MetricsCacheAt;
  mutable bool MetricsCacheValid = false;
  mutable bool MetricsRefreshInFlight = false;

  std::vector<int> ListenFds;
  int BoundTcpPort = -1;
  std::atomic<bool> AcceptStop{false};

  std::thread AcceptThread;
  std::vector<std::thread> Dispatchers;

  std::mutex ConnLock;
  std::condition_variable ConnDoneCV;
  std::vector<std::shared_ptr<Connection>> Conns;
  uint64_t NextConnId = 1;

  std::atomic<uint64_t> QueuedJobs{0};

  std::atomic<bool> Accepting{false};
  std::atomic<bool> DrainAndExit{false};

  mutable std::mutex LifeLock;
  std::condition_variable LifeCV;
  std::atomic<bool> Started{false};
  std::atomic<bool> StopRequested{false};
  std::atomic<bool> Stopped{false};

  mutable std::mutex StatsLock;
  FleetCounters Counters;
};

} // namespace llvmmd

#endif // LLVMMD_FLEET_FLEETROUTER_H
