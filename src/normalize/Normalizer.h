//===- Normalizer.h - Value-graph rewrite engine ----------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Applies the enabled rewrite rule sets to a shared value graph until a
/// fixpoint (or budget). Rules are oriented the way the LLVM optimizer
/// rewrites (paper §4.1): the engine only ever rewrites a node *into* its
/// more-optimized form, which keeps the number of rewrites proportional to
/// the number of transformations the optimizer performed.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_NORMALIZE_NORMALIZER_H
#define LLVMMD_NORMALIZE_NORMALIZER_H

#include "normalize/Rules.h"
#include "vg/ValueGraph.h"

#include <map>
#include <string>
#include <vector>

namespace llvmmd {

struct NormalizeStats {
  unsigned Rewrites = 0;
  unsigned SharingMerges = 0;
  unsigned Iterations = 0;
  /// Per-rule fire counts, for the rule-effectiveness analyses.
  std::map<std::string, unsigned> RuleFires;
};

/// Normalizes \p G with respect to the live cones of \p Roots.
/// Interleaves rule application with sharing maximization, as in Figure 1:
/// rewrite, re-share, repeat. Returns the statistics of the run.
NormalizeStats normalizeGraph(ValueGraph &G, const std::vector<NodeId> &Roots,
                              const RuleConfig &Config);

} // namespace llvmmd

#endif // LLVMMD_NORMALIZE_NORMALIZER_H
