//===- Normalizer.cpp - Value-graph rewrite engine ----------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "normalize/Normalizer.h"

#include "ir/Folding.h"
#include "ir/Module.h"

#include <algorithm>
#include <set>

using namespace llvmmd;

namespace {

class RuleEngine {
public:
  RuleEngine(ValueGraph &G, const RuleConfig &C, NormalizeStats &Stats)
      : G(G), C(C), Stats(Stats) {}

  /// One full sweep over the live nodes; returns the number of rewrites.
  unsigned sweep(const std::vector<NodeId> &Roots) {
    GraphRoots = Roots;
    computeLive(Roots);
    unsigned Rewrites = 0;
    // Iterate over a snapshot of live roots; rewrites may add nodes (they
    // are processed next sweep).
    std::vector<NodeId> Work(Live.begin(), Live.end());
    for (NodeId N : Work) {
      if (G.find(N) != N)
        continue; // already merged away this sweep
      Rewrites += applyRules(N);
    }
    Stats.Rewrites += Rewrites;
    return Rewrites;
  }

private:
  void fire(const char *Rule) { ++Stats.RuleFires[Rule]; }

  void computeLive(const std::vector<NodeId> &Roots) {
    Live.clear();
    std::vector<NodeId> WorkStack;
    for (NodeId R : Roots)
      WorkStack.push_back(G.find(R));
    while (!WorkStack.empty()) {
      NodeId N = WorkStack.back();
      WorkStack.pop_back();
      if (!Live.insert(N).second)
        continue;
      for (NodeId Op : G.node(N).Ops)
        if (Op != InvalidNode)
          WorkStack.push_back(G.find(Op));
    }
    LiveStamp = G.getMergeCount();
  }

  /// The liveness-sensitive rules (dead store / dead allocation) must see a
  /// live set that reflects all merges performed so far in this sweep.
  void refreshLive() {
    if (LiveStamp != G.getMergeCount())
      computeLive(GraphRoots);
  }

  bool isConstInt(NodeId N, int64_t *V = nullptr) const {
    const Node &Nd = G.node(N);
    if (Nd.Kind != NodeKind::ConstInt)
      return false;
    if (V)
      *V = Nd.IntVal;
    return true;
  }

  bool isBoolConst(NodeId N, bool Want) const {
    const Node &Nd = G.node(N);
    return Nd.Kind == NodeKind::ConstInt && Nd.Ty->isBool() &&
           (Nd.IntVal != 0) == Want;
  }

  NodeId boolNode(bool B) {
    // Type pointers come from the nodes themselves; find any i1 node.
    assert(BoolTy && "no boolean type seen in graph");
    return G.getConstBool(BoolTy, B);
  }

  unsigned applyRules(NodeId N) {
    const Node &Nd = G.node(N);
    if (Nd.Ty && Nd.Ty->isBool() && !BoolTy)
      BoolTy = Nd.Ty;
    switch (Nd.Kind) {
    case NodeKind::Op:
      return rewriteOp(N);
    case NodeKind::Gamma:
      return rewriteGamma(N);
    case NodeKind::Eta:
      return rewriteEta(N);
    case NodeKind::Load:
      return rewriteLoad(N);
    case NodeKind::Store:
      return rewriteStore(N);
    case NodeKind::AllocMem:
      return rewriteAllocMem(N);
    case NodeKind::Call:
      return rewriteCall(N);
    default:
      return 0;
    }
  }

  //===------------------------------------------------------------------===//
  // Op rules: boolean algebra, constant folding, canonicalization
  //===------------------------------------------------------------------===//

  unsigned rewriteOp(NodeId N) {
    const Node &Nd = G.node(N);
    if (Nd.Op == Opcode::GEP)
      return rewriteGEP(N);
    unsigned NumOps = Nd.Ops.size();
    if (NumOps == 1 && isCastOp(Nd.Op))
      return rewriteCast(N);
    if (NumOps != 2)
      return 0;
    NodeId A = G.operand(N, 0), B = G.operand(N, 1);

    // Constant folding (integers).
    if (C.has(RS_ConstFold)) {
      int64_t VA, VB;
      if (Nd.Op == Opcode::ICmp && isConstInt(A, &VA) && isConstInt(B, &VB)) {
        bool R = foldICmp(static_cast<ICmpPred>(Nd.Pred), VA, VB,
                          G.node(A).Ty->getBitWidth());
        fire("constfold.icmp");
        G.mergeInto(N, G.getConstBool(Nd.Ty, R));
        return 1;
      }
      if (isIntBinaryOp(Nd.Op) && isConstInt(A, &VA) && isConstInt(B, &VB)) {
        auto R = foldIntBinary(Nd.Op, VA, VB, Nd.Ty->getBitWidth());
        if (R) {
          fire("constfold.binary");
          G.mergeInto(N, G.getConstInt(Nd.Ty, *R));
          return 1;
        }
      }
      if (unsigned Hits = constIdentities(N, A, B))
        return Hits;
    }

    if (C.has(RS_FloatFold)) {
      const Node &NA = G.node(A), &NB = G.node(B);
      if (NA.Kind == NodeKind::ConstFloat && NB.Kind == NodeKind::ConstFloat) {
        if (isFloatBinaryOp(Nd.Op)) {
          fire("floatfold.binary");
          G.mergeInto(N, G.getConstFloat(
                             Nd.Ty, foldFloatBinary(Nd.Op, NA.FloatVal,
                                                    NB.FloatVal)));
          return 1;
        }
        if (Nd.Op == Opcode::FCmp) {
          fire("floatfold.fcmp");
          G.mergeInto(N, G.getConstBool(
                             Nd.Ty, foldFCmp(static_cast<FCmpPred>(Nd.Pred),
                                             NA.FloatVal, NB.FloatVal)));
          return 1;
        }
      }
    }

    if (C.has(RS_Boolean)) {
      if (unsigned Hits = booleanRules(N, A, B))
        return Hits;
    }

    if (C.has(RS_Canonicalize)) {
      if (unsigned Hits = canonicalizeOp(N, A, B))
        return Hits;
    }
    return 0;
  }

  unsigned constIdentities(NodeId N, NodeId A, NodeId B) {
    const Node &Nd = G.node(N);
    int64_t VA = 0, VB = 0;
    bool CA = isConstInt(A, &VA), CB = isConstInt(B, &VB);
    // Same-operand identities, mirroring the optimizer's simplifier.
    if (A == B) {
      switch (Nd.Op) {
      case Opcode::And:
      case Opcode::Or:
        fire("constfold.idem");
        G.mergeInto(N, A);
        return 1;
      case Opcode::Xor:
      case Opcode::Sub:
        fire("constfold.self-cancel");
        G.mergeInto(N, G.getConstInt(Nd.Ty, 0));
        return 1;
      default:
        break;
      }
    }
    switch (Nd.Op) {
    case Opcode::Add:
      // Commutative identities must look at both sides: hash-consing
      // orders operands by node id, which often puts constants first.
      if (CB && VB == 0) {
        fire("constfold.add0");
        G.mergeInto(N, A);
        return 1;
      }
      if (CA && VA == 0) {
        fire("constfold.add0");
        G.mergeInto(N, B);
        return 1;
      }
      break;
    case Opcode::Sub:
      if (CB && VB == 0) {
        fire("constfold.sub0");
        G.mergeInto(N, A);
        return 1;
      }
      break;
    case Opcode::Mul:
      if (CB && VB == 1) {
        fire("constfold.mul1");
        G.mergeInto(N, A);
        return 1;
      }
      if (CA && VA == 1) {
        fire("constfold.mul1");
        G.mergeInto(N, B);
        return 1;
      }
      if ((CA && VA == 0) || (CB && VB == 0)) {
        fire("constfold.mul0");
        G.mergeInto(N, G.getConstInt(Nd.Ty, 0));
        return 1;
      }
      break;
    case Opcode::And:
      if ((CA && VA == 0) || (CB && VB == 0)) {
        fire("constfold.and0");
        G.mergeInto(N, G.getConstInt(Nd.Ty, 0));
        return 1;
      }
      if (CB && VB == -1) {
        fire("constfold.and1s");
        G.mergeInto(N, A);
        return 1;
      }
      if (CA && VA == -1) {
        fire("constfold.and1s");
        G.mergeInto(N, B);
        return 1;
      }
      break;
    case Opcode::Or:
      if (CB && VB == 0) {
        fire("constfold.or0");
        G.mergeInto(N, A);
        return 1;
      }
      if (CA && VA == 0) {
        fire("constfold.or0");
        G.mergeInto(N, B);
        return 1;
      }
      break;
    case Opcode::Xor:
      if (CB && VB == 0) {
        fire("constfold.xor0");
        G.mergeInto(N, A);
        return 1;
      }
      if (CA && VA == 0) {
        fire("constfold.xor0");
        G.mergeInto(N, B);
        return 1;
      }
      break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
      if (CB && VB == 0) {
        fire("constfold.shift0");
        G.mergeInto(N, A);
        return 1;
      }
      break;
    case Opcode::SDiv:
    case Opcode::UDiv:
      if (CB && VB == 1) {
        fire("constfold.div1");
        G.mergeInto(N, A);
        return 1;
      }
      break;
    default:
      break;
    }
    return 0;
  }

  unsigned booleanRules(NodeId N, NodeId A, NodeId B) {
    const Node &Nd = G.node(N);
    if (Nd.Op == Opcode::ICmp) {
      auto P = static_cast<ICmpPred>(Nd.Pred);
      // Rules (1)-(2): a == a ↓ true, a != a ↓ false (and orderings).
      if (A == B) {
        bool R = P == ICmpPred::EQ || P == ICmpPred::SLE ||
                 P == ICmpPred::SGE || P == ICmpPred::ULE ||
                 P == ICmpPred::UGE;
        bool IsOrderLike =
            P != ICmpPred::EQ && P != ICmpPred::NE; // all handled anyway
        (void)IsOrderLike;
        fire("boolean.cmp-same");
        G.mergeInto(N, G.getConstBool(Nd.Ty, R));
        return 1;
      }
      // Rules (3)-(4) at i1: a == true ↓ a, a != false ↓ a.
      if (G.node(A).Ty && G.node(A).Ty->isBool()) {
        if (P == ICmpPred::EQ && isBoolConst(B, true)) {
          fire("boolean.eq-true");
          G.mergeInto(N, A);
          return 1;
        }
        if (P == ICmpPred::NE && isBoolConst(B, false)) {
          fire("boolean.ne-false");
          G.mergeInto(N, A);
          return 1;
        }
        if (P == ICmpPred::EQ && isBoolConst(A, true)) {
          fire("boolean.eq-true");
          G.mergeInto(N, B);
          return 1;
        }
        if (P == ICmpPred::NE && isBoolConst(A, false)) {
          fire("boolean.ne-false");
          G.mergeInto(N, B);
          return 1;
        }
      }
      return 0;
    }
    if (!Nd.Ty || !Nd.Ty->isBool())
      return 0;
    // Complement recognition: y == ¬x.
    auto IsNotOf = [&](NodeId X, NodeId Y) {
      const Node &NY = G.node(Y);
      if (NY.Kind != NodeKind::Op || NY.Op != Opcode::Xor ||
          NY.Ops.size() != 2)
        return false;
      NodeId YA = G.find(NY.Ops[0]), YB = G.find(NY.Ops[1]);
      return (YA == X && isBoolConst(YB, true)) ||
             (YB == X && isBoolConst(YA, true));
    };
    switch (Nd.Op) {
    case Opcode::And:
      if (A == B || isBoolConst(B, true)) {
        fire("boolean.and");
        G.mergeInto(N, A);
        return 1;
      }
      if (isBoolConst(A, true)) {
        fire("boolean.and");
        G.mergeInto(N, B);
        return 1;
      }
      if (isBoolConst(A, false) || isBoolConst(B, false)) {
        fire("boolean.and-false");
        G.mergeInto(N, boolNode(false));
        return 1;
      }
      if (IsNotOf(A, B) || IsNotOf(B, A)) {
        fire("boolean.and-complement");
        G.mergeInto(N, boolNode(false));
        return 1;
      }
      break;
    case Opcode::Or:
      if (A == B || isBoolConst(B, false)) {
        fire("boolean.or");
        G.mergeInto(N, A);
        return 1;
      }
      if (isBoolConst(A, false)) {
        fire("boolean.or");
        G.mergeInto(N, B);
        return 1;
      }
      if (isBoolConst(A, true) || isBoolConst(B, true)) {
        fire("boolean.or-true");
        G.mergeInto(N, boolNode(true));
        return 1;
      }
      if (IsNotOf(A, B) || IsNotOf(B, A)) {
        fire("boolean.or-complement");
        G.mergeInto(N, boolNode(true));
        return 1;
      }
      break;
    case Opcode::Xor: {
      // not(not(x)) ↓ x ; xor x false ↓ x ; xor x x ↓ false. The constant
      // may sit on either side after commutative canonicalization.
      if (A == B) {
        fire("boolean.xor-same");
        G.mergeInto(N, boolNode(false));
        return 1;
      }
      for (auto [X, K] : {std::pair{A, B}, std::pair{B, A}}) {
        if (isBoolConst(K, false)) {
          fire("boolean.xor-false");
          G.mergeInto(N, X);
          return 1;
        }
        if (!isBoolConst(K, true))
          continue;
        const Node &NX = G.node(X);
        if (NX.Kind == NodeKind::Op && NX.Op == Opcode::Xor &&
            NX.Ops.size() == 2) {
          // Inner negation: find its non-constant side.
          NodeId IA = G.find(NX.Ops[0]), IB = G.find(NX.Ops[1]);
          for (auto [IX, IK] : {std::pair{IA, IB}, std::pair{IB, IA}}) {
            if (isBoolConst(IK, true)) {
              fire("boolean.not-not");
              G.mergeInto(N, IX);
              return 1;
            }
          }
        }
        if (NX.Kind == NodeKind::ConstInt) {
          fire("boolean.not-const");
          G.mergeInto(N, boolNode(NX.IntVal == 0));
          return 1;
        }
      }
      break;
    }
    default:
      break;
    }
    return 0;
  }

  unsigned canonicalizeOp(NodeId N, NodeId A, NodeId B) {
    const Node &Nd = G.node(N);
    int64_t VA, VB;
    switch (Nd.Op) {
    case Opcode::Add:
      // a + a ↓ shl a 1 (LLVM prefers the shift).
      if (A == B) {
        fire("canon.add-self");
        G.mergeInto(N, G.getOp(Opcode::Shl, Nd.Ty,
                               {A, G.getConstInt(Nd.Ty, 1)}));
        return 1;
      }
      // add x (-k) ↓ sub x k. The constant may sit on either side: the
      // hash-consed operand order is by node id, not by kind.
      for (auto [X, K] : {std::pair{A, B}, std::pair{B, A}}) {
        if (isConstInt(K, &VB) && VB < 0 &&
            VB != signExtend(int64_t(1) << (Nd.Ty->getBitWidth() - 1),
                             Nd.Ty->getBitWidth())) {
          fire("canon.add-neg");
          G.mergeInto(N, G.getOp(Opcode::Sub, Nd.Ty,
                                 {X, G.getConstInt(Nd.Ty, -VB)}));
          return 1;
        }
      }
      break;
    case Opcode::Sub:
      if (A == B && C.has(RS_ConstFold)) {
        fire("canon.sub-self");
        G.mergeInto(N, G.getConstInt(Nd.Ty, 0));
        return 1;
      }
      break;
    case Opcode::Mul:
      // mul a 2^k ↓ shl a k (either operand order).
      for (auto [X, K] : {std::pair{A, B}, std::pair{B, A}}) {
        if (isConstInt(K, &VA) && VA > 1 &&
            (static_cast<uint64_t>(VA) &
             (static_cast<uint64_t>(VA) - 1)) == 0) {
          unsigned Shift = 0;
          while ((int64_t(1) << Shift) != VA)
            ++Shift;
          fire("canon.mul-pow2");
          G.mergeInto(N, G.getOp(Opcode::Shl, Nd.Ty,
                                 {X, G.getConstInt(Nd.Ty, Shift)}));
          return 1;
        }
      }
      break;
    case Opcode::ICmp: {
      // Constant on the left: reorient (gt 10 a ↓ lt a 10).
      if (G.node(A).Kind == NodeKind::ConstInt &&
          G.node(B).Kind != NodeKind::ConstInt) {
        fire("canon.cmp-swap");
        G.mergeInto(
            N, G.getOp(Opcode::ICmp, Nd.Ty, {B, A},
                       static_cast<uint8_t>(
                           swapPred(static_cast<ICmpPred>(Nd.Pred)))));
        return 1;
      }
      // Neither constant: orient by node order so that GVN's predicate
      // canonicalization (a < b vs b > a) meets in one form.
      if (G.node(A).Kind != NodeKind::ConstInt && B < A) {
        fire("canon.cmp-orient");
        G.mergeInto(
            N, G.getOp(Opcode::ICmp, Nd.Ty, {B, A},
                       static_cast<uint8_t>(
                           swapPred(static_cast<ICmpPred>(Nd.Pred)))));
        return 1;
      }
      break;
    }
    default:
      break;
    }
    return 0;
  }

  unsigned rewriteCast(NodeId N) {
    if (!C.has(RS_ConstFold))
      return 0;
    const Node &Nd = G.node(N);
    NodeId S = G.operand(N, 0);
    int64_t V;
    if (isConstInt(S, &V)) {
      fire("constfold.cast");
      G.mergeInto(N, G.getConstInt(
                         Nd.Ty, foldCast(Nd.Op, V,
                                         G.node(S).Ty->getBitWidth(),
                                         Nd.Ty->getBitWidth())));
      return 1;
    }
    return 0;
  }

  unsigned rewriteGEP(NodeId N) {
    if (!C.has(RS_ConstFold))
      return 0;
    NodeId Idx = G.operand(N, 1);
    int64_t V;
    if (isConstInt(Idx, &V) && V == 0) {
      fire("constfold.gep0");
      G.mergeInto(N, G.operand(N, 0));
      return 1;
    }
    return 0;
  }

  //===------------------------------------------------------------------===//
  // Gamma rules (5)-(6)
  //===------------------------------------------------------------------===//

  unsigned rewriteGamma(NodeId N) {
    if (!C.has(RS_PhiSimplify))
      return 0;
    const Node &Nd = G.node(N);
    std::vector<std::pair<NodeId, NodeId>> Branches;
    bool Dropped = false;
    NodeId TrueBranchValue = InvalidNode;
    for (unsigned K = 0; K + 1 < Nd.Ops.size(); K += 2) {
      NodeId Cond = G.find(Nd.Ops[K]);
      NodeId Val = G.find(Nd.Ops[K + 1]);
      if (isBoolConst(Cond, false)) {
        Dropped = true;
        continue; // dead branch
      }
      if (isBoolConst(Cond, true) && TrueBranchValue == InvalidNode)
        TrueBranchValue = Val;
      Branches.emplace_back(Cond, Val);
    }
    // Rule (5): a branch whose conditions hold is the value.
    if (TrueBranchValue != InvalidNode) {
      fire("phi.rule5");
      G.mergeInto(N, TrueBranchValue);
      return 1;
    }
    if (Branches.empty())
      return 0; // all branches dead: undefined; leave untouched
    // Rule (6): all branches agree.
    bool AllSame = true;
    for (auto &[Cond, Val] : Branches)
      AllSame &= Val == Branches.front().second;
    if (AllSame) {
      fire("phi.rule6");
      G.mergeInto(N, Branches.front().second);
      return 1;
    }
    if (Dropped) {
      fire("phi.drop-false");
      G.mergeInto(N, G.getGamma(Nd.Ty, Branches));
      return 1;
    }
    // Flatten a nested γ: a branch (c, γ(d_i → v_i)) becomes the branches
    // (c ∧ d_i → v_i). This is how a select tree and a multi-way φ over
    // conjunctive gates meet in one canonical flat form (footnote 1 of the
    // paper: short-circuit conditions make such φs common).
    for (unsigned Which = 0; Which < Branches.size(); ++Which) {
      const Node &NV = G.node(Branches[Which].second);
      if (NV.Kind != NodeKind::Gamma)
        continue;
      if (!BoolTy)
        break; // cannot build conjunctions yet
      std::vector<std::pair<NodeId, NodeId>> Flat;
      for (unsigned K2 = 0; K2 < Branches.size(); ++K2)
        if (K2 != Which)
          Flat.push_back(Branches[K2]);
      NodeId Outer = Branches[Which].first;
      for (unsigned K2 = 0; K2 + 1 < NV.Ops.size(); K2 += 2) {
        NodeId InnerC = G.find(NV.Ops[K2]);
        NodeId InnerV = G.find(NV.Ops[K2 + 1]);
        Flat.emplace_back(G.getOp(Opcode::And, BoolTy, {Outer, InnerC}),
                          InnerV);
      }
      fire("phi.flatten");
      G.mergeInto(N, G.getGamma(Nd.Ty, Flat));
      return 1;
    }
    // Boolean γ(c → true, !c → false) ↓ c.
    if (C.has(RS_Boolean) && Nd.Ty && Nd.Ty->isBool() &&
        Branches.size() == 2) {
      for (unsigned Which = 0; Which < 2; ++Which) {
        NodeId CT = Branches[Which].first, VT = Branches[Which].second;
        NodeId VF = Branches[1 - Which].second;
        if (isBoolConst(VT, true) && isBoolConst(VF, false)) {
          fire("boolean.gamma-to-cond");
          G.mergeInto(N, CT);
          return 1;
        }
      }
    }
    return 0;
  }

  //===------------------------------------------------------------------===//
  // Eta / Mu rules (7)-(9) + commuting
  //===------------------------------------------------------------------===//

  unsigned rewriteEta(NodeId N) {
    NodeId Cond = G.operand(N, 0);
    NodeId Val = G.operand(N, 1);
    const Node &NV = G.node(Val);

    if (C.has(RS_EtaMu)) {
      if (NV.Kind == NodeKind::Mu && NV.Ops[0] != InvalidNode) {
        NodeId Init = G.find(NV.Ops[0]);
        NodeId Next = G.find(NV.Ops[1]);
        // Rule (7): the loop never executes.
        if (isBoolConst(Cond, false)) {
          fire("eta.rule7");
          G.mergeInto(N, Init);
          return 1;
        }
        // Rule (7) continued: a loop whose guard is false on entry. The
      // stay condition seen symbolically contains the μ streams; evaluate
      // it at the first iteration by substituting every μ by its initial
      // value (η nodes are opaque: they belong to other loops).
      if (auto First = firstIterValue(Cond, 0); First && *First == 0) {
        fire("eta.rule7-first-iter");
        G.mergeInto(N, Init);
        return 1;
      }
      // Rule (8): μ(x, x) — the value never varies.
        if (Init == Next) {
          fire("eta.rule8");
          G.mergeInto(N, Init);
          return 1;
        }
        // Rule (9): μ(x, self) — generalized to μ whose iteration value is
        // itself behind η layers (an inner loop that never modified it).
        NodeId Strip = Next;
        while (G.node(Strip).Kind == NodeKind::Eta)
          Strip = G.find(G.node(Strip).Ops[1]);
        if (Strip == Val) {
          fire("eta.rule9");
          G.mergeInto(N, Init);
          return 1;
        }
      }
      // η over a loop-free value is the value itself.
      if (NV.Kind != NodeKind::Mu && !G.coneContainsMu(Val)) {
        fire("eta.loop-free");
        G.mergeInto(N, Val);
        return 1;
      }
    }

    if (C.has(RS_Commuting)) {
      // Validating loop unswitching: distribute a loop-invariant γ out of
      // the μ cycle by duplicating the loop under both polarities.
      if (NV.Kind == NodeKind::Mu && NV.Ops[0] != InvalidNode) {
        if (unsigned Hits = unswitchEta(N, Cond, Val))
          return Hits;
      }
      // Push η toward μ: distribute over pure structure.
      const Node &EtaNode = G.node(N);
      if (NV.Kind == NodeKind::Op) {
        fire("commute.eta-op");
        std::vector<NodeId> NewOps;
        for (NodeId Op : NV.Ops)
          NewOps.push_back(G.getEta(G.node(G.find(Op)).Ty, Cond, G.find(Op)));
        G.mergeInto(N, G.getOp(NV.Op, NV.Ty, std::move(NewOps), NV.Pred,
                               NV.IntVal));
        return 1;
      }
      if (NV.Kind == NodeKind::Gamma) {
        fire("commute.eta-gamma");
        std::vector<std::pair<NodeId, NodeId>> Branches;
        for (unsigned K = 0; K + 1 < NV.Ops.size(); K += 2) {
          NodeId BC = G.find(NV.Ops[K]);
          NodeId BV = G.find(NV.Ops[K + 1]);
          Branches.emplace_back(G.getEta(G.node(BC).Ty, Cond, BC),
                                G.getEta(G.node(BV).Ty, Cond, BV));
        }
        G.mergeInto(N, G.getGamma(NV.Ty, Branches));
        return 1;
      }
      if (NV.Kind == NodeKind::Load) {
        fire("commute.eta-load");
        NodeId P = G.find(NV.Ops[0]), M = G.find(NV.Ops[1]);
        G.mergeInto(N, G.getLoad(NV.Ty, G.getEta(G.node(P).Ty, Cond, P),
                                 G.getEta(nullptr, Cond, M)));
        return 1;
      }
      if (NV.Kind == NodeKind::Store) {
        fire("commute.eta-store");
        NodeId V = G.find(NV.Ops[0]), P = G.find(NV.Ops[1]),
               M = G.find(NV.Ops[2]);
        G.mergeInto(N, G.getStore(G.getEta(G.node(V).Ty, Cond, V),
                                  G.getEta(G.node(P).Ty, Cond, P),
                                  G.getEta(nullptr, Cond, M)));
        return 1;
      }
      (void)EtaNode;
    }
    return 0;
  }

  /// True if the byte range [PtrOff, PtrOff+Size) of \p Ptr lies wholly
  /// inside the memset fill [DstOff, DstOff+Len) over the same base.
  bool memsetCovers(NodeId Dst, int64_t Len, NodeId Ptr, unsigned Size) {
    auto Walk = [&](NodeId P, int64_t &Off) -> NodeId {
      Off = 0;
      NodeId Cur = G.find(P);
      while (G.node(Cur).Kind == NodeKind::Op &&
             G.node(Cur).Op == Opcode::GEP) {
        const Node &NG = G.node(Cur);
        const Node &Idx = G.node(G.find(NG.Ops[1]));
        if (Idx.Kind != NodeKind::ConstInt)
          return InvalidNode;
        Off += Idx.IntVal * NG.IntVal;
        Cur = G.find(NG.Ops[0]);
      }
      return Cur;
    };
    int64_t DstOff, PtrOff;
    NodeId DstBase = Walk(Dst, DstOff);
    NodeId PtrBase = Walk(Ptr, PtrOff);
    if (DstBase == InvalidNode || PtrBase == InvalidNode ||
        DstBase != PtrBase)
      return false;
    return PtrOff >= DstOff &&
           PtrOff + static_cast<int64_t>(Size) <= DstOff + Len;
  }

  /// Evaluates \p N at a loop's first iteration: μ nodes contribute their
  /// initial value, constants themselves, pure integer ops fold; anything
  /// else (η, loads, calls, params) is unknown.
  std::optional<int64_t> firstIterValue(NodeId N, unsigned Depth) {
    if (Depth > 64)
      return std::nullopt;
    N = G.find(N);
    const Node &Nd = G.node(N);
    switch (Nd.Kind) {
    case NodeKind::ConstInt:
      return Nd.IntVal;
    case NodeKind::Mu:
      if (Nd.Ops[0] == InvalidNode)
        return std::nullopt;
      return firstIterValue(Nd.Ops[0], Depth + 1);
    case NodeKind::Op: {
      if (!Nd.Ty || !Nd.Ty->isInteger())
        return std::nullopt;
      if (Nd.Op == Opcode::ICmp && Nd.Ops.size() == 2) {
        auto A = firstIterValue(Nd.Ops[0], Depth + 1);
        auto B = firstIterValue(Nd.Ops[1], Depth + 1);
        if (!A || !B)
          return std::nullopt;
        Type *OpTy = G.node(G.find(Nd.Ops[0])).Ty;
        if (!OpTy || !OpTy->isInteger())
          return std::nullopt;
        return foldICmp(static_cast<ICmpPred>(Nd.Pred), *A, *B,
                        OpTy->getBitWidth())
                   ? 1
                   : 0;
      }
      if (isIntBinaryOp(Nd.Op) && Nd.Ops.size() == 2) {
        auto A = firstIterValue(Nd.Ops[0], Depth + 1);
        auto B = firstIterValue(Nd.Ops[1], Depth + 1);
        if (!A || !B)
          return std::nullopt;
        auto R = foldIntBinary(Nd.Op, *A, *B, Nd.Ty->getBitWidth());
        return R ? std::optional<int64_t>(*R) : std::nullopt;
      }
      if (isCastOp(Nd.Op) && Nd.Ops.size() == 1) {
        auto A = firstIterValue(Nd.Ops[0], Depth + 1);
        Type *SrcTy = G.node(G.find(Nd.Ops[0])).Ty;
        if (!A || !SrcTy || !SrcTy->isInteger())
          return std::nullopt;
        return foldCast(Nd.Op, *A, SrcTy->getBitWidth(),
                        Nd.Ty->getBitWidth());
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
    }
  }

  //===------------------------------------------------------------------===//
  // Unswitch commuting: η(e, μ[... γ(c,a,b) ...]) with loop-invariant c
  // becomes γ(c → η_t, ¬c → η_f), where η_t/η_f are copies of the loop
  // with the γ resolved to its true/false side. Mirrors what the loop
  // unswitching pass did to the optimized function.
  //===------------------------------------------------------------------===//

  /// Finds a two-branch γ inside the cone of \p Mu whose branch conditions
  /// are {c, ¬c} with c independent of the loop (no path back to Mu).
  /// Returns (gamma, c, trueVal, falseVal) via out-params.
  bool findInvariantGamma(NodeId Mu, NodeId &GammaOut, NodeId &CondOut,
                          NodeId &TrueOut, NodeId &FalseOut) {
    std::set<NodeId> Seen;
    std::vector<NodeId> Work{G.operand(Mu, 1)};
    std::vector<NodeId> Candidates;
    while (!Work.empty()) {
      NodeId N = G.find(Work.back());
      Work.pop_back();
      if (!Seen.insert(N).second || Seen.size() > 512)
        continue;
      const Node &Nd = G.node(N);
      if (Nd.Kind == NodeKind::Gamma && Nd.Ops.size() == 4)
        Candidates.push_back(N);
      for (NodeId Op : Nd.Ops)
        if (Op != InvalidNode)
          Work.push_back(Op);
    }
    std::sort(Candidates.begin(), Candidates.end());
    for (NodeId N : Candidates) {
      const Node &Nd = G.node(N);
      NodeId C1 = G.find(Nd.Ops[0]), V1 = G.find(Nd.Ops[1]);
      NodeId C2 = G.find(Nd.Ops[2]), V2 = G.find(Nd.Ops[3]);
      // Match {c, xor(c, true)} in either order.
      auto NotOf = [&](NodeId X) -> NodeId {
        const Node &NX = G.node(X);
        if (NX.Kind == NodeKind::Op && NX.Op == Opcode::Xor &&
            NX.Ops.size() == 2) {
          NodeId A = G.find(NX.Ops[0]), B = G.find(NX.Ops[1]);
          if (isBoolConst(B, true))
            return A;
          if (isBoolConst(A, true))
            return B;
        }
        return InvalidNode;
      };
      NodeId Cond = InvalidNode, TV = InvalidNode, FV = InvalidNode;
      if (NotOf(C2) == C1) {
        Cond = C1;
        TV = V1;
        FV = V2;
      } else if (NotOf(C1) == C2) {
        Cond = C2;
        TV = V2;
        FV = V1;
      } else {
        continue;
      }
      // The condition must not depend on the loop (and must not be
      // trivially constant, which PhiSimplify would handle).
      if (reaches(Cond, Mu))
        continue;
      GammaOut = N;
      CondOut = Cond;
      TrueOut = TV;
      FalseOut = FV;
      return true;
    }
    return false;
  }

  /// True if \p Target is reachable from \p From over current roots.
  bool reaches(NodeId From, NodeId Target) {
    Target = G.find(Target);
    std::set<NodeId> Seen;
    std::vector<NodeId> Work{G.find(From)};
    while (!Work.empty()) {
      NodeId N = G.find(Work.back());
      Work.pop_back();
      if (N == Target)
        return true;
      if (!Seen.insert(N).second || Seen.size() > 2048)
        continue;
      for (NodeId Op : G.node(N).Ops)
        if (Op != InvalidNode)
          Work.push_back(Op);
    }
    return false;
  }

  /// Clones the cone of \p N substituting γ \p Gamma by \p Repl; nodes that
  /// cannot reach either the γ or the μ \p Mu are shared, not cloned.
  NodeId cloneSubst(NodeId N, NodeId Gamma, NodeId Repl, NodeId Mu,
                    std::map<NodeId, NodeId> &Memo) {
    N = G.find(N);
    if (N == G.find(Gamma))
      return cloneSubst(Repl, Gamma, Repl, Mu, Memo);
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    if (!reaches(N, Gamma) && !reaches(N, Mu)) {
      Memo[N] = N; // invariant: share
      return N;
    }
    const Node &Nd = G.node(N);
    if (Nd.Kind == NodeKind::Mu) {
      if (Nd.Ops[0] == InvalidNode || Nd.Ops[1] == InvalidNode)
        return InvalidNode; // unfinished μ (should not be live)
      NodeId NewMu = G.makeMu(Nd.Ty);
      Memo[N] = NewMu; // break the cycle before recursing
      NodeId Init = cloneSubst(Nd.Ops[0], Gamma, Repl, Mu, Memo);
      NodeId Next = cloneSubst(Nd.Ops[1], Gamma, Repl, Mu, Memo);
      if (Init == InvalidNode || Next == InvalidNode) {
        // Park the unfinished μ on itself so it is inert, and fail.
        G.setMuOperands(NewMu, NewMu, NewMu);
        Memo[N] = InvalidNode;
        return InvalidNode;
      }
      G.setMuOperands(NewMu, Init, Next);
      return NewMu;
    }
    Node Copy = Nd;
    Memo[N] = InvalidNode; // cycle guard (non-μ cycles should not exist)
    for (NodeId &Op : Copy.Ops) {
      if (Op == InvalidNode)
        continue;
      Op = cloneSubst(Op, Gamma, Repl, Mu, Memo);
      if (Op == InvalidNode) {
        // A cycle not broken by a μ (or a prior failure): give up on this
        // clone entirely; the caller abandons the rewrite.
        Memo[N] = InvalidNode;
        return InvalidNode;
      }
    }
    NodeId New;
    switch (Copy.Kind) {
    case NodeKind::Op:
      New = G.getOp(Copy.Op, Copy.Ty, Copy.Ops, Copy.Pred, Copy.IntVal);
      break;
    case NodeKind::Gamma: {
      std::vector<std::pair<NodeId, NodeId>> Branches;
      for (unsigned K = 0; K + 1 < Copy.Ops.size(); K += 2)
        Branches.emplace_back(Copy.Ops[K], Copy.Ops[K + 1]);
      New = G.getGamma(Copy.Ty, Branches);
      break;
    }
    case NodeKind::Eta:
      New = G.getEta(Copy.Ty, Copy.Ops[0], Copy.Ops[1]);
      break;
    case NodeKind::Load:
      New = G.getLoad(Copy.Ty, Copy.Ops[0], Copy.Ops[1]);
      break;
    case NodeKind::Store:
      New = G.getStore(Copy.Ops[0], Copy.Ops[1], Copy.Ops[2]);
      break;
    case NodeKind::Alloc:
      New = G.getAlloc(Copy.Ops[0], Copy.Ops[1],
                       static_cast<unsigned>(Copy.IntVal));
      break;
    case NodeKind::AllocMem:
      New = G.getAllocMem(Copy.Ops[0]);
      break;
    case NodeKind::Call:
      New = G.getCall(Copy.Str, static_cast<MemoryEffect>(Copy.IntVal),
                      Copy.Ty, Copy.Ops);
      break;
    case NodeKind::CallMem:
      New = G.getCallMem(Copy.Ops[0]);
      break;
    default:
      New = N; // leaves are never cloned
      break;
    }
    Memo[N] = New;
    return New;
  }

  unsigned unswitchEta(NodeId N, NodeId Cond, NodeId Mu) {
    // Each application duplicates a loop cone; cap the growth per run.
    if (Stats.RuleFires["commute.unswitch"] >= 8)
      return 0;
    NodeId Gamma = InvalidNode, C2 = InvalidNode, TV = InvalidNode,
           FV = InvalidNode;
    if (!findInvariantGamma(Mu, Gamma, C2, TV, FV))
      return 0;
    std::map<NodeId, NodeId> MemoT, MemoF;
    Type *EtaTy = G.node(N).Ty;
    NodeId CondT = cloneSubst(Cond, Gamma, TV, Mu, MemoT);
    NodeId MuT = cloneSubst(Mu, Gamma, TV, Mu, MemoT);
    NodeId CondF = cloneSubst(Cond, Gamma, FV, Mu, MemoF);
    NodeId MuF = cloneSubst(Mu, Gamma, FV, Mu, MemoF);
    if (CondT == InvalidNode || MuT == InvalidNode || CondF == InvalidNode ||
        MuF == InvalidNode)
      return 0; // unclonable cone; leave the η alone
    NodeId EtaT = G.getEta(EtaTy, CondT, MuT);
    NodeId EtaF = G.getEta(EtaTy, CondF, MuF);
    assert(BoolTy && "unswitching without a boolean type in the graph");
    NodeId NotC = G.getOp(Opcode::Xor, BoolTy, {C2, boolNode(true)});
    fire("commute.unswitch");
    G.mergeInto(N, G.getGamma(EtaTy, {{C2, EtaT}, {NotC, EtaF}}));
    return 1;
  }

  //===------------------------------------------------------------------===//
  // Memory rules (10)-(11), dead stores/allocations, libc knowledge
  //===------------------------------------------------------------------===//

  unsigned accessSize(const Node &LoadNode) const {
    return LoadNode.Ty ? LoadNode.Ty->getStoreSize() : 1;
  }

  unsigned rewriteLoad(NodeId N) {
    if (!C.has(RS_LoadStore))
      return 0;
    const Node &Nd = G.node(N);
    NodeId Ptr = G.operand(N, 0);
    NodeId Mem = G.operand(N, 1);
    const Node &NM = G.node(Mem);

    if (NM.Kind == NodeKind::Store) {
      NodeId SV = G.find(NM.Ops[0]);
      NodeId SP = G.find(NM.Ops[1]);
      NodeId SM = G.find(NM.Ops[2]);
      unsigned LSize = accessSize(Nd);
      unsigned SSize = G.node(SV).Ty ? G.node(SV).Ty->getStoreSize() : 1;
      int AR = G.aliasPointers(Ptr, SP, LSize, SSize);
      // Rule (11): load of the just-stored value.
      if (AR == 2 && G.node(SV).Ty == Nd.Ty) {
        fire("loadstore.rule11");
        G.mergeInto(N, SV);
        return 1;
      }
      // Rule (10): the load jumps over a non-aliasing store.
      if (AR == 0) {
        fire("loadstore.rule10");
        G.mergeInto(N, G.getLoad(Nd.Ty, Ptr, SM));
        return 1;
      }
      return 0;
    }
    // Allocations do not write memory: jump over them.
    if (NM.Kind == NodeKind::AllocMem) {
      NodeId Alloc = G.find(NM.Ops[0]);
      NodeId PreMem = G.operand(Alloc, 1);
      fire("loadstore.skip-alloc");
      G.mergeInto(N, G.getLoad(Nd.Ty, Ptr, PreMem));
      return 1;
    }
    // Folding a load of a constant global (extension rule set).
    if (C.has(RS_GlobalFold) && C.M) {
      const Node &NP = G.node(Ptr);
      if (NP.Kind == NodeKind::Global && NP.IntVal /*constant-qualified*/) {
        if (const GlobalVariable *GV = C.M->getGlobal(NP.Str)) {
          if (GV->hasInitializer() && GV->getValueType() == Nd.Ty) {
            if (const auto *CI = dyn_cast<ConstantInt>(GV->getInitializer())) {
              fire("globalfold.load");
              G.mergeInto(N, G.getConstInt(Nd.Ty, CI->getSExtValue()));
              return 1;
            }
            if (const auto *CF = dyn_cast<ConstantFP>(GV->getInitializer())) {
              fire("globalfold.load");
              G.mergeInto(N, G.getConstFloat(Nd.Ty, CF->getValue()));
              return 1;
            }
          }
        }
      }
    }
    // A load whose memory is a loop μ can read the loop's initial memory
    // when no write inside the cycle may alias it (mirrors LICM hoisting a
    // load out of a loop that only writes elsewhere).
    if (NM.Kind == NodeKind::Mu && NM.Ops[0] != InvalidNode) {
      if (muWritesDisjointFrom(Mem, {Ptr})) {
        fire("loadstore.load-over-loop");
        G.mergeInto(N, G.getLoad(Nd.Ty, Ptr, G.find(NM.Ops[0])));
        return 1;
      }
    }
    // Libc: loads may jump over memset to a disjoint region, or read the
    // memset fill byte.
    if (C.has(RS_Libc) && NM.Kind == NodeKind::CallMem) {
      NodeId Call = G.find(NM.Ops[0]);
      const Node &NC = G.node(Call);
      if (NC.Str == "memset" && NC.Ops.size() == 4) {
        NodeId Dst = G.find(NC.Ops[0]);
        NodeId Fill = G.find(NC.Ops[1]);
        NodeId Len = G.find(NC.Ops[2]);
        NodeId PreMem = G.find(NC.Ops[3]);
        int64_t LenV;
        unsigned LSize = accessSize(Nd);
        const Node &LenNode = G.node(Len);
        if (LenNode.Kind == NodeKind::ConstInt) {
          LenV = LenNode.IntVal < 0 ? 0 : LenNode.IntVal;
          int AR = G.aliasPointers(Ptr, Dst, LSize,
                                   static_cast<unsigned>(LenV));
          if (AR == 0) {
            fire("libc.load-over-memset");
            G.mergeInto(N, G.getLoad(Nd.Ty, Ptr, PreMem));
            return 1;
          }
          // Reading a byte wholly inside the filled region yields the fill
          // value (the paper's memset rule, l2 < l1).
          int64_t FillV;
          if (LSize == 1 && isConstInt(Fill, &FillV) && Nd.Ty->isInteger() &&
              memsetCovers(Dst, LenV, Ptr, LSize)) {
            fire("libc.memset-read");
            G.mergeInto(N, G.getConstInt(Nd.Ty, signExtend(FillV, 8)));
            return 1;
          }
        }
      }
    }
    return 0;
  }

  unsigned rewriteStore(NodeId N) {
    if (!C.has(RS_LoadStore))
      return 0;
    NodeId Val = G.find(G.node(N).Ops[0]);
    NodeId Ptr = G.operand(N, 1);
    NodeId Mem = G.operand(N, 2);
    const Node &NM = G.node(Mem);
    // Store-over-store to the same location: the older store is dead.
    if (NM.Kind == NodeKind::Store) {
      NodeId SP = G.find(NM.Ops[1]);
      NodeId SM = G.find(NM.Ops[2]);
      unsigned NewSize = G.node(Val).Ty ? G.node(Val).Ty->getStoreSize() : 1;
      NodeId OldVal = G.find(NM.Ops[0]);
      unsigned OldSize =
          G.node(OldVal).Ty ? G.node(OldVal).Ty->getStoreSize() : 1;
      int AR = G.aliasPointers(Ptr, SP, NewSize, OldSize);
      if (AR == 2 && NewSize >= OldSize) {
        fire("loadstore.store-over-store");
        G.mergeInto(N, G.getStore(Val, Ptr, SM));
        return 1;
      }
      // Adjacent stores to disjoint locations commute; order the chain
      // canonically (smaller pointer root innermost) so both functions'
      // chains meet in one shape regardless of emission order.
      if (AR == 0 && G.find(Ptr) < G.find(SP)) {
        fire("loadstore.store-commute");
        NodeId Inner = G.getStore(Val, Ptr, SM);
        G.mergeInto(N, G.getStore(OldVal, SP, Inner));
        return 1;
      }
    }
    // Dead store: non-escaping allocation never read by any live load.
    if (storeIsDead(N, Ptr)) {
      fire("loadstore.dead-store");
      G.mergeInto(N, Mem);
      return 1;
    }
    return 0;
  }

  /// True if \p StoreNode writes a non-escaping allocation from which no
  /// live load may read.
  bool storeIsDead(NodeId StoreNode, NodeId Ptr) {
    const Node &NP = G.node(Ptr);
    NodeId Base = Ptr;
    // Walk GEPs to the base.
    while (G.node(Base).Kind == NodeKind::Op &&
           G.node(Base).Op == Opcode::GEP)
      Base = G.find(G.node(Base).Ops[0]);
    if (G.node(Base).Kind != NodeKind::Alloc)
      return false;
    if (!G.isNonEscapingAlloc(Base))
      return false;
    (void)NP;
    refreshLive();
    // Any live load that may alias the store's pointer keeps it alive.
    for (NodeId L : Live) {
      if (G.find(L) != L)
        continue;
      const Node &NL = G.node(L);
      if (NL.Kind != NodeKind::Load)
        continue;
      unsigned LSize = NL.Ty ? NL.Ty->getStoreSize() : 1;
      if (G.aliasPointers(G.find(NL.Ops[0]), Ptr, LSize, 8) != 0)
        return false;
    }
    (void)StoreNode;
    return true;
  }

  unsigned rewriteAllocMem(NodeId N) {
    if (!C.has(RS_LoadStore))
      return 0;
    // Dead allocation: the pointer is never used by any live node.
    NodeId Alloc = G.find(G.node(N).Ops[0]);
    refreshLive();
    for (NodeId L : Live) {
      if (G.find(L) != L || L == N)
        continue;
      for (NodeId Op : G.node(L).Ops)
        if (Op != InvalidNode && G.find(Op) == Alloc)
          return 0; // still referenced
    }
    fire("loadstore.dead-alloc");
    G.mergeInto(N, G.operand(Alloc, 1)); // memory before the allocation
    return 1;
  }

  unsigned rewriteCall(NodeId N) {
    if (!C.has(RS_Libc))
      return 0;
    const Node &Nd = G.node(N);
    auto Effect = static_cast<MemoryEffect>(Nd.IntVal);
    if (Effect != MemoryEffect::ReadOnly || Nd.Ops.empty())
      return 0;
    NodeId Mem = G.find(Nd.Ops.back());
    std::vector<NodeId> PtrArgs;
    for (unsigned K = 0; K + 1 < Nd.Ops.size(); ++K) {
      NodeId A = G.find(Nd.Ops[K]);
      if (G.node(A).Ty && G.node(A).Ty->isPointer())
        PtrArgs.push_back(A);
    }
    const Node &NM = G.node(Mem);
    // A readonly call jumps over a store none of its pointers can see.
    if (NM.Kind == NodeKind::Store) {
      NodeId SP = G.find(NM.Ops[1]);
      bool AllDisjoint = true;
      for (NodeId P : PtrArgs)
        AllDisjoint &= G.aliasPointers(P, SP, 4096, 8) == 0;
      if (AllDisjoint) {
        fire("libc.call-over-store");
        std::vector<NodeId> NewOps(Nd.Ops.begin(), Nd.Ops.end() - 1);
        NewOps.push_back(G.find(NM.Ops[2]));
        G.mergeInto(N, G.getCall(Nd.Str, Effect, Nd.Ty, std::move(NewOps)));
        return 1;
      }
      return 0;
    }
    if (NM.Kind == NodeKind::AllocMem) {
      fire("libc.call-over-alloc");
      NodeId Alloc = G.find(NM.Ops[0]);
      std::vector<NodeId> NewOps(Nd.Ops.begin(), Nd.Ops.end() - 1);
      NewOps.push_back(G.operand(Alloc, 1));
      G.mergeInto(N, G.getCall(Nd.Str, Effect, Nd.Ty, std::move(NewOps)));
      return 1;
    }
    // A readonly call whose memory is a loop μ can use the loop's initial
    // memory if no write inside the loop can affect its pointers.
    if (NM.Kind == NodeKind::Mu && NM.Ops[0] != InvalidNode) {
      if (muWritesDisjointFrom(Mem, PtrArgs)) {
        fire("libc.call-over-loop");
        std::vector<NodeId> NewOps(Nd.Ops.begin(), Nd.Ops.end() - 1);
        NewOps.push_back(G.find(NM.Ops[0]));
        G.mergeInto(N, G.getCall(Nd.Str, Effect, Nd.Ty, std::move(NewOps)));
        return 1;
      }
    }
    return 0;
  }

  /// Walks the memory chain of the μ cycle; true if every store in it is
  /// disjoint from every pointer in \p PtrArgs and no opaque CallMem
  /// appears.
  bool muWritesDisjointFrom(NodeId Mu, const std::vector<NodeId> &PtrArgs) {
    std::set<NodeId> Seen;
    std::vector<NodeId> Work{G.find(G.node(Mu).Ops[1])};
    while (!Work.empty()) {
      NodeId M = G.find(Work.back());
      Work.pop_back();
      if (M == G.find(Mu) || !Seen.insert(M).second)
        continue;
      const Node &NM = G.node(M);
      switch (NM.Kind) {
      case NodeKind::Store: {
        NodeId SP = G.find(NM.Ops[1]);
        for (NodeId P : PtrArgs)
          if (G.aliasPointers(P, SP, 4096, 8) != 0)
            return false;
        Work.push_back(NM.Ops[2]);
        break;
      }
      case NodeKind::AllocMem:
        Work.push_back(G.operand(G.find(NM.Ops[0]), 1));
        break;
      case NodeKind::CallMem:
        return false;
      case NodeKind::Gamma:
        for (unsigned K = 1; K < NM.Ops.size(); K += 2)
          Work.push_back(NM.Ops[K]);
        break;
      case NodeKind::Eta:
        Work.push_back(NM.Ops[1]);
        break;
      case NodeKind::Mu:
        // A nested loop's memory: recurse through both sides.
        if (NM.Ops[0] != InvalidNode) {
          Work.push_back(NM.Ops[0]);
          Work.push_back(NM.Ops[1]);
        }
        break;
      case NodeKind::InitialMem:
        break;
      default:
        return false; // unexpected node in a memory chain
      }
    }
    return true;
  }

  ValueGraph &G;
  const RuleConfig &C;
  NormalizeStats &Stats;
  std::set<NodeId> Live;
  std::vector<NodeId> GraphRoots;
  unsigned LiveStamp = 0;
  Type *BoolTy = nullptr;
};

} // namespace

NormalizeStats llvmmd::normalizeGraph(ValueGraph &G,
                                      const std::vector<NodeId> &Roots,
                                      const RuleConfig &Config) {
  NormalizeStats Stats;
  RuleEngine Engine(G, Config, Stats);
  for (unsigned Iter = 0; Iter < Config.MaxIterations; ++Iter) {
    ++Stats.Iterations;
    unsigned Rewrites = Engine.sweep(Roots);
    unsigned Merges = G.maximizeSharing(Config.Strategy);
    Stats.SharingMerges += Merges;
    if (Rewrites == 0 && Merges == 0)
      break;
  }
  return Stats;
}
