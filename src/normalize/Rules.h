//===- Rules.h - Rewrite rule sets and configuration ------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The validator's rewrite rules come in individually toggleable sets so
/// the benchmark harness can reproduce the paper's rule ablations
/// (Figures 6-8). The first seven sets are the rules the paper describes;
/// the last three are the extensions it names as known false-alarm fixes
/// (libc knowledge, floating-point constant folding, folding of global
/// constants).
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_NORMALIZE_RULES_H
#define LLVMMD_NORMALIZE_RULES_H

#include "vg/ValueGraph.h"

namespace llvmmd {

class Module;

enum RuleSet : unsigned {
  RS_None = 0,
  /// Boolean simplification — the paper's rules (1)-(4) plus i1 algebra.
  RS_Boolean = 1u << 0,
  /// φ (γ-node) simplification — rules (5)-(6).
  RS_PhiSimplify = 1u << 1,
  /// η/μ simplification — rules (7)-(9) plus η-elimination on loop-free
  /// values.
  RS_EtaMu = 1u << 2,
  /// Constant folding over integers (add 3 2 ↓ 5) and constant identities
  /// (x+0, x*1, x*0, ...).
  RS_ConstFold = 1u << 3,
  /// LLVM-oriented canonicalizations: a+a ↓ shl a 1, mul-by-2^k ↓ shl,
  /// add x (-k) ↓ sub x k, comparison reorientation (gt 10 a ↓ lt a 10).
  RS_Canonicalize = 1u << 4,
  /// Load/store simplification with aliasing — rules (10)-(11), dead store
  /// and dead allocation removal.
  RS_LoadStore = 1u << 5,
  /// Commuting rules: push η nodes toward their μ nodes; distribute γ out
  /// of loops (validating loop unswitching).
  RS_Commuting = 1u << 6,
  /// Extension: libc knowledge (strlen/memset/atoi models).
  RS_Libc = 1u << 7,
  /// Extension: floating-point constant folding.
  RS_FloatFold = 1u << 8,
  /// Extension: folding loads of constant global variables.
  RS_GlobalFold = 1u << 9,

  /// What the paper's evaluated validator uses.
  RS_Paper = RS_Boolean | RS_PhiSimplify | RS_EtaMu | RS_ConstFold |
             RS_Canonicalize | RS_LoadStore | RS_Commuting,
  /// Everything, including the extensions.
  RS_All = RS_Paper | RS_Libc | RS_FloatFold | RS_GlobalFold,
};

/// Configuration of one validation run.
struct RuleConfig {
  unsigned Mask = RS_Paper;
  /// Module providing global-variable initializers for RS_GlobalFold.
  const Module *M = nullptr;
  /// Fixpoint budget of the normalize/share loop.
  unsigned MaxIterations = 32;
  SharingStrategy Strategy = SharingStrategy::Combined;

  bool has(RuleSet RS) const { return (Mask & RS) != 0; }
};

} // namespace llvmmd

#endif // LLVMMD_NORMALIZE_RULES_H
