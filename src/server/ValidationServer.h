//===- ValidationServer.h - Persistent validation daemon --------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer over the ValidationEngine: a long-running daemon that
/// keeps one engine — its thread pool, its verdict cache, its triage cache
/// and its warm persistent store — hot in a single process and multiplexes
/// many clients onto it. Where `batch_validate` pays module load,
/// optimization and normalization from scratch every invocation, the
/// server pays them once and serves every later submission of the same
/// functions as a pure replay.
///
/// Architecture (all blocking I/O, no event loop to get subtly wrong):
///
///   * one accept thread polls the configured listeners (unix-domain
///     socket and/or loopback TCP) and spawns one thread per connection;
///   * connection threads speak the framed protocol (server/Protocol.h):
///     versioned handshake gated on the verdict-store config digest,
///     then Submit/Stats/Ping/Shutdown requests;
///   * an admission-controlled FIFO job queue hands submissions to the one
///     executor thread, which owns the ValidationEngine exclusively —
///     engine parallelism comes from the engine's own work-stealing pool,
///     so the engine's single-caller contract is honored by construction.
///     Admission control is a hard queue bound: a client that would grow
///     the backlog past MaxQueuedJobs gets an immediate QueueFull error
///     instead of an unbounded latency promise.
///
/// Responses stream: per-function JSON frames (byte-identical to the
/// corresponding entries of the final report) as each module finishes, the
/// per-module report, then the final suite report — exactly the bytes a
/// batch run over the same inputs would emit — and a JobDone frame with
/// the engine's cache-stat deltas for the job.
///
/// Restart warmness: the engine loads the persistent VerdictStore at
/// startup and the server checkpoints it (atomic merge-on-save, the same
/// discipline the store itself enforces) every CheckpointEveryJobs
/// completed jobs and once more at shutdown. A daemon restarted on the
/// same store replays verdicts *and* triage results without recomputing
/// anything.
///
/// A client disconnecting mid-job only kills its response stream; the job
/// itself runs to completion so its verdicts still warm the shared caches
/// for everyone else.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_SERVER_VALIDATIONSERVER_H
#define LLVMMD_SERVER_VALIDATIONSERVER_H

#include "driver/ValidationEngine.h"
#include "server/Protocol.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace llvmmd {

class Context;
class Module;

struct ServerConfig {
  /// Unix-domain socket path to listen on (empty = no unix listener). The
  /// path is unlinked before binding and on shutdown.
  std::string UnixPath;
  /// Loopback TCP port to listen on: -1 = no TCP listener, 0 = ephemeral
  /// (kernel-assigned; read it back with boundTcpPort()).
  int TcpPort = -1;
  /// Pass pipeline applied to every submitted module; empty = the paper's.
  std::string Pipeline;
  /// Engine configuration. CachePath enables the warm persistent store;
  /// CacheSave is forced off because the *server* owns the checkpoint
  /// cadence (see CheckpointEveryJobs).
  EngineConfig Engine;
  /// Hard bound on queued (not yet running) jobs; submissions beyond it
  /// are rejected with QueueFull.
  unsigned MaxQueuedJobs = 32;
  /// Checkpoint the verdict store every N completed jobs (0 = only at
  /// shutdown). Checkpoints are skipped while the cache is clean.
  unsigned CheckpointEveryJobs = 1;
  /// Per-frame payload ceiling for this server's connections.
  uint32_t MaxFrameBytes = DefaultMaxFrameBytes;
  /// Log a warn-level line for any job whose end-to-end wall time exceeds
  /// this many microseconds (0 = disabled). Diagnostic only — the job
  /// itself is unaffected.
  uint64_t SlowJobMicroseconds = 0;
  /// `HOST:PORT` for the embedded HTTP responder serving GET /metrics and
  /// /healthz (empty = none; port 0 = ephemeral, read back with
  /// boundHttpPort()). Lets a stock Prometheus scrape the daemon without
  /// `validate_client` as a bridge; the body is byte-identical to the
  /// protocol Metrics frame.
  std::string HttpMetrics;
};

/// Monotonic serving counters, exposed through /stats (statsJSON) and the
/// test suite. Engine cache counters are snapshotted separately.
struct ServerCounters {
  uint64_t ConnectionsAccepted = 0;
  uint64_t HandshakesRejected = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t JobsSubmitted = 0;
  uint64_t JobsCompleted = 0;
  uint64_t JobsRejected = 0; ///< admission control (queue full / stopping)
  uint64_t JobsErrored = 0;  ///< bad submit (unknown profile, parse error)
  uint64_t MaxQueueDepth = 0;
  uint64_t FunctionsReported = 0;
  uint64_t ModulesValidated = 0;
  uint64_t JobMicroseconds = 0; ///< summed end-to-end job wall time
  /// Summed Accepted -> executor-start wait. With JobsCompleted this
  /// gives mean queue wait; the per-job distribution is in /metrics.
  uint64_t QueueWaitMicroseconds = 0;
  uint64_t Checkpoints = 0;
};

class ValidationServer {
public:
  explicit ValidationServer(ServerConfig Config);
  ~ValidationServer();

  ValidationServer(const ValidationServer &) = delete;
  ValidationServer &operator=(const ValidationServer &) = delete;

  /// Binds the listeners, loads the warm store, and spawns the accept and
  /// executor threads. False (with \p Error) when nothing could be bound.
  bool start(std::string *Error = nullptr);

  /// Asynchronous graceful-stop trigger: admission closes immediately, the
  /// executor drains the queue (checkpointing at the end), listeners and
  /// connections wind down. Safe to call from connection threads (the
  /// Shutdown frame handler) — it only flags and notifies.
  void requestStop();

  /// The async-signal-safe subset of requestStop: atomic stores only, no
  /// locks, no condition-variable calls. Every waiter polls its predicate
  /// on a short timeout, so the flags are noticed within ~200ms. This is
  /// what a SIGINT/SIGTERM handler may call.
  void requestStopFromSignal() {
    Accepting = false;
    DrainAndExit = true;
    AcceptStop = true;
    StopRequested = true;
  }

  /// Blocking stop: requestStop() plus joining every thread and the final
  /// checkpoint. Must not be called from a server-owned thread.
  void stop();

  /// Blocks until a requested stop has fully completed (the daemon main's
  /// "serve until a client asks us to exit"), performing the blocking part
  /// of the stop itself.
  void wait();

  bool isStopped() const;

  /// Gates the executor between jobs: while paused, accepted jobs stay
  /// queued. Deterministic admission-control tests and maintenance windows
  /// (checkpoint + copy the store) are the intended users. Ignored once a
  /// stop is requested (draining overrides pausing).
  void setPaused(bool P);

  /// The digest the handshake is gated on (rule mask, sharing strategy,
  /// fixpoint budget, semantics salt — the verdict store's own gate).
  uint64_t configDigest() const;

  /// The kernel-assigned port when TcpPort was 0; -1 before start().
  int boundTcpPort() const { return BoundTcpPort; }

  /// The HTTP responder's kernel-assigned port; -1 when HttpMetrics is
  /// unset or before start().
  int boundHttpPort() const;

  unsigned engineThreads() const;

  ServerCounters counters() const;
  EngineCacheStats engineStats() const;
  /// The /stats reply: serving counters + engine cache counters + queue
  /// depth as one JSON document.
  std::string statsJSON() const;
  /// The /metrics reply: the process metrics registry rendered as
  /// Prometheus text exposition format (server gauges refreshed first).
  std::string metricsText() const;

private:
  struct Connection {
    /// Guarded by WriteLock everywhere except the owning connection
    /// thread's reads: set to -1 under the lock when the thread closes the
    /// socket, so the executor can never write to (or stop() shut down) a
    /// closed-and-kernel-reused descriptor.
    int Fd = -1;
    uint64_t Id = 0;
    /// Serializes writes: job frames come from the executor thread while
    /// pong/stats replies come from the connection's own thread. Also
    /// fences the close (above).
    std::mutex WriteLock;
    /// Cleared on the first failed write; the executor skips streaming the
    /// rest of a job to a dead client (the job itself still completes).
    std::atomic<bool> Alive{true};
    bool Handshaken = false;
  };

  /// Opened by the connection thread once the Accepted frame is on the
  /// wire, so the executor can never race a job's first response frame
  /// ahead of its acceptance.
  struct JobGate {
    std::mutex Lock;
    std::condition_variable CV;
    bool Open = false;
  };

  struct Job {
    uint64_t Id = 0;
    std::shared_ptr<Connection> Conn;
    std::shared_ptr<JobGate> Gate;
    SubmitPayload Req;
    /// Stamped under QueueLock at admission; the executor measures
    /// Accepted -> executor-start queue wait against it on pop.
    std::chrono::steady_clock::time_point Enqueued;
    /// Event-buffer index snapshotted at executor pop: the job's own
    /// spans are exactly [TraceStartIdx, end) when JobDone is built,
    /// because the executor is the only traced writer between pop and
    /// done. Meaningful only for traced jobs (Req.TraceId != 0).
    size_t TraceStartIdx = 0;
  };

  bool listenOn(int Fd, const std::string &What, std::string *Error);
  void acceptLoop();
  void handleConnection(std::shared_ptr<Connection> C);
  /// One request frame; returns false when the connection must close.
  bool handleFrame(Connection &C, const Frame &F);
  void executorLoop();
  void runJob(const Job &J);
  bool sendFrame(Connection &C, FrameType T, const std::string &Payload);
  void sendError(Connection &C, ErrorCode Code, const std::string &Msg);
  /// Engine-thread only: checkpoint the store when dirty (no-op while the
  /// cache is clean or no store is configured).
  void checkpoint();
  /// Engine-thread only: resolve one submitted module to a Module* through
  /// the shared ModuleLoader. \p Unsupported receives the ingest frontend's
  /// per-function rejections for `.ll` submissions; \p Error gets the
  /// loader's diagnostic (with line/column) on failure.
  const Module *materializeModule(const SubmitModule &M, Context &JobCtx,
                                  std::vector<std::unique_ptr<Module>> &Own,
                                  std::vector<UnsupportedFunctionEntry> *Unsupported,
                                  std::string *Error);

  ServerConfig Cfg;
  std::string Pipeline;
  std::unique_ptr<ValidationEngine> Engine;
  /// The /metrics + /healthz sidecar (HttpMetrics config); null when off.
  std::unique_ptr<class HttpServer> Http;
  /// True while span collection is on because a *traced job* turned it on
  /// (as opposed to the operator's --trace): the executor turns it back
  /// off once no traced work remains, so an untraced daemon does not
  /// accumulate events forever. Guarded by QueueLock.
  bool TraceSelfEnabled = false;

  /// Generated-profile cache: submitted profiles are materialized once per
  /// (name, function-count) and revalidated from the same IR afterwards.
  /// Executor-thread only.
  std::unique_ptr<Context> GenCtx;
  std::map<std::string, std::unique_ptr<Module>> GenCache;

  std::vector<int> ListenFds;
  int BoundTcpPort = -1;
  std::atomic<bool> AcceptStop{false};

  std::thread AcceptThread;
  std::thread ExecutorThread;

  std::mutex ConnLock;
  std::condition_variable ConnDoneCV;
  std::vector<std::shared_ptr<Connection>> Conns;
  uint64_t NextConnId = 1;

  mutable std::mutex QueueLock;
  std::condition_variable QueueCV;
  std::deque<Job> Queue;
  uint64_t NextJobId = 1;
  /// Lifecycle flags are atomics (not QueueLock-guarded state) so the
  /// signal-safe stop path can set them without taking a lock; every CV
  /// wait on them is a bounded wait_for, so a store without a notify is
  /// still observed promptly.
  std::atomic<bool> Accepting{false};
  std::atomic<bool> Paused{false};
  std::atomic<bool> DrainAndExit{false};

  mutable std::mutex LifeLock;
  std::condition_variable LifeCV;
  std::atomic<bool> Started{false};
  std::atomic<bool> StopRequested{false};
  std::atomic<bool> Stopped{false};

  mutable std::mutex StatsLock;
  ServerCounters Counters;
  /// Executor-updated copy of the engine's cache stats: the engine itself
  /// is single-caller, so /stats must read a snapshot, not the live engine.
  EngineCacheStats EngineSnapshot;
};

} // namespace llvmmd

#endif // LLVMMD_SERVER_VALIDATIONSERVER_H
