//===- Protocol.cpp - Validation service wire protocol ------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "support/Hashing.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

using namespace llvmmd;

//===----------------------------------------------------------------------===//
// Raw socket I/O
//===----------------------------------------------------------------------===//

namespace {

/// Sends all of \p Data. MSG_NOSIGNAL instead of a process-wide SIGPIPE
/// handler: a client hanging up mid-stream must surface as a failed write
/// on this connection, not kill the daemon.
bool sendAll(int Fd, const char *Data, size_t Len) {
#ifndef _WIN32
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
#else
  (void)Fd;
  (void)Data;
  (void)Len;
  return false;
#endif
}

/// Receives exactly \p Len bytes. Returns 1 on success, 0 on orderly EOF
/// *before the first byte*, -1 on a short read or error.
int recvAll(int Fd, char *Data, size_t Len) {
#ifndef _WIN32
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::recv(Fd, Data + Got, Len - Got, 0);
    if (N == 0)
      return Got == 0 ? 0 : -1;
    if (N < 0)
      return -1;
    Got += static_cast<size_t>(N);
  }
  return 1;
#else
  (void)Fd;
  (void)Data;
  (void)Len;
  return -1;
#endif
}

} // namespace

bool llvmmd::writeFrame(int Fd, FrameType Type, const std::string &Payload) {
  std::string Header;
  appendU32LE(Header, static_cast<uint32_t>(Payload.size()));
  Header.push_back(static_cast<char>(Type));
  return sendAll(Fd, Header.data(), Header.size()) &&
         sendAll(Fd, Payload.data(), Payload.size());
}

ReadStatus llvmmd::readFrame(int Fd, Frame &F, uint32_t MaxPayload) {
  char Header[5];
  int R = recvAll(Fd, Header, sizeof(Header));
  if (R == 0)
    return ReadStatus::Eof;
  if (R < 0)
    return ReadStatus::Truncated;
  size_t Cur = 0;
  uint32_t Len = 0;
  readU32LE(Header, 4, Cur, Len);
  // Reject the length before allocating or reading a single payload byte;
  // a garbage header must not let a client make the server buffer 4 GB.
  if (Len > MaxPayload)
    return ReadStatus::Oversized;
  F.Type = static_cast<FrameType>(static_cast<unsigned char>(Header[4]));
  F.Payload.resize(Len);
  if (Len > 0 && recvAll(Fd, F.Payload.data(), Len) != 1)
    return ReadStatus::Truncated;
  return ReadStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Payload codecs. Decoders must consume exactly the payload: trailing bytes
// are as much a protocol error as missing ones.
//===----------------------------------------------------------------------===//

namespace {

bool readU8(const std::string &B, size_t &Cur, uint8_t &V) {
  if (Cur >= B.size())
    return false;
  V = static_cast<unsigned char>(B[Cur++]);
  return true;
}

bool atEnd(const std::string &B, size_t Cur) { return Cur == B.size(); }

} // namespace

std::string llvmmd::encodeHello(const HelloPayload &P) {
  std::string Out;
  appendU32LE(Out, P.Version);
  appendU64LE(Out, P.ConfigDigest);
  return Out;
}

bool llvmmd::decodeHello(const std::string &Bytes, HelloPayload &P) {
  size_t Cur = 0;
  return readU32LE(Bytes.data(), Bytes.size(), Cur, P.Version) &&
         readU64LE(Bytes.data(), Bytes.size(), Cur, P.ConfigDigest) &&
         atEnd(Bytes, Cur);
}

std::string llvmmd::encodeHelloOk(const HelloOkPayload &P) {
  std::string Out;
  appendU32LE(Out, P.Version);
  appendU64LE(Out, P.ConfigDigest);
  appendU32LE(Out, P.EngineThreads);
  Out.push_back(static_cast<char>(P.TriageEnabled));
  return Out;
}

bool llvmmd::decodeHelloOk(const std::string &Bytes, HelloOkPayload &P) {
  size_t Cur = 0;
  return readU32LE(Bytes.data(), Bytes.size(), Cur, P.Version) &&
         readU64LE(Bytes.data(), Bytes.size(), Cur, P.ConfigDigest) &&
         readU32LE(Bytes.data(), Bytes.size(), Cur, P.EngineThreads) &&
         readU8(Bytes, Cur, P.TriageEnabled) && atEnd(Bytes, Cur);
}

std::string llvmmd::encodeSubmit(const SubmitPayload &P) {
  std::string Out;
  appendU32LE(Out, static_cast<uint32_t>(P.Modules.size()));
  for (const SubmitModule &M : P.Modules) {
    Out.push_back(static_cast<char>(M.Source));
    appendLPString(Out, M.Name);
    appendLPString(Out, M.Text);
    appendU32LE(Out, M.FnCount);
  }
  // Optional trailing trace id: absent entirely for untraced submissions,
  // which keeps them byte-identical to the pre-trace v3 encoding (and
  // keeps hash-of-encoding job keys stable across the upgrade).
  if (P.TraceId)
    appendU64LE(Out, P.TraceId);
  return Out;
}

bool llvmmd::decodeSubmit(const std::string &Bytes, SubmitPayload &P) {
  size_t Cur = 0;
  uint32_t Count = 0;
  if (!readU32LE(Bytes.data(), Bytes.size(), Cur, Count))
    return false;
  // Each module costs at least 10 bytes on the wire; a count the payload
  // cannot possibly hold is rejected before the reserve.
  if (Count > Bytes.size() / 10)
    return false;
  P.Modules.clear();
  P.Modules.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    SubmitModule M;
    if (!readU8(Bytes, Cur, M.Source) ||
        !readLPString(Bytes.data(), Bytes.size(), Cur, M.Name) ||
        !readLPString(Bytes.data(), Bytes.size(), Cur, M.Text) ||
        !readU32LE(Bytes.data(), Bytes.size(), Cur, M.FnCount))
      return false;
    P.Modules.push_back(std::move(M));
  }
  P.TraceId = 0;
  if (!atEnd(Bytes, Cur) &&
      !readU64LE(Bytes.data(), Bytes.size(), Cur, P.TraceId))
    return false;
  return atEnd(Bytes, Cur);
}

std::string llvmmd::encodeAccepted(const AcceptedPayload &P) {
  std::string Out;
  appendU64LE(Out, P.JobId);
  appendU32LE(Out, P.QueuePosition);
  return Out;
}

bool llvmmd::decodeAccepted(const std::string &Bytes, AcceptedPayload &P) {
  size_t Cur = 0;
  return readU64LE(Bytes.data(), Bytes.size(), Cur, P.JobId) &&
         readU32LE(Bytes.data(), Bytes.size(), Cur, P.QueuePosition) &&
         atEnd(Bytes, Cur);
}

std::string llvmmd::encodeFunction(const FunctionPayload &P) {
  std::string Out;
  appendU32LE(Out, P.ModuleIndex);
  appendLPString(Out, P.ModuleName);
  appendLPString(Out, P.Json);
  return Out;
}

bool llvmmd::decodeFunction(const std::string &Bytes, FunctionPayload &P) {
  size_t Cur = 0;
  return readU32LE(Bytes.data(), Bytes.size(), Cur, P.ModuleIndex) &&
         readLPString(Bytes.data(), Bytes.size(), Cur, P.ModuleName) &&
         readLPString(Bytes.data(), Bytes.size(), Cur, P.Json) &&
         atEnd(Bytes, Cur);
}

std::string llvmmd::encodeModuleReport(const ModuleReportPayload &P) {
  std::string Out;
  appendU32LE(Out, P.ModuleIndex);
  appendLPString(Out, P.Json);
  return Out;
}

bool llvmmd::decodeModuleReport(const std::string &Bytes,
                                ModuleReportPayload &P) {
  size_t Cur = 0;
  return readU32LE(Bytes.data(), Bytes.size(), Cur, P.ModuleIndex) &&
         readLPString(Bytes.data(), Bytes.size(), Cur, P.Json) &&
         atEnd(Bytes, Cur);
}

std::string llvmmd::encodeJobDone(const JobDonePayload &P) {
  std::string Out;
  appendU64LE(Out, P.JobId);
  Out.push_back(static_cast<char>(P.Status));
  appendU64LE(Out, P.Hits);
  appendU64LE(Out, P.WarmHits);
  appendU64LE(Out, P.Misses);
  appendU64LE(Out, P.SkippedIdentical);
  appendU64LE(Out, P.TriageHits);
  appendU64LE(Out, P.TriageWarmHits);
  appendU64LE(Out, P.TriageMisses);
  appendU64LE(Out, P.WallMicroseconds);
  // Optional trailing trace fields, same contract as encodeSubmit: only a
  // traced job's JobDone grows, untraced bytes stay pre-trace v3.
  if (P.TraceId) {
    appendU64LE(Out, P.TraceId);
    appendLPString(Out, P.TraceBlob);
  }
  return Out;
}

bool llvmmd::decodeJobDone(const std::string &Bytes, JobDonePayload &P) {
  size_t Cur = 0;
  if (!(readU64LE(Bytes.data(), Bytes.size(), Cur, P.JobId) &&
        readU8(Bytes, Cur, P.Status) &&
        readU64LE(Bytes.data(), Bytes.size(), Cur, P.Hits) &&
        readU64LE(Bytes.data(), Bytes.size(), Cur, P.WarmHits) &&
        readU64LE(Bytes.data(), Bytes.size(), Cur, P.Misses) &&
        readU64LE(Bytes.data(), Bytes.size(), Cur, P.SkippedIdentical) &&
        readU64LE(Bytes.data(), Bytes.size(), Cur, P.TriageHits) &&
        readU64LE(Bytes.data(), Bytes.size(), Cur, P.TriageWarmHits) &&
        readU64LE(Bytes.data(), Bytes.size(), Cur, P.TriageMisses) &&
        readU64LE(Bytes.data(), Bytes.size(), Cur, P.WallMicroseconds)))
    return false;
  P.TraceId = 0;
  P.TraceBlob.clear();
  if (!atEnd(Bytes, Cur) &&
      !(readU64LE(Bytes.data(), Bytes.size(), Cur, P.TraceId) &&
        readLPString(Bytes.data(), Bytes.size(), Cur, P.TraceBlob)))
    return false;
  return atEnd(Bytes, Cur);
}

std::string llvmmd::encodeError(const ErrorPayload &P) {
  std::string Out;
  Out.push_back(static_cast<char>(P.Code));
  appendLPString(Out, P.Message);
  return Out;
}

bool llvmmd::decodeError(const std::string &Bytes, ErrorPayload &P) {
  size_t Cur = 0;
  uint8_t Code = 0;
  if (!readU8(Bytes, Cur, Code) ||
      !readLPString(Bytes.data(), Bytes.size(), Cur, P.Message) ||
      !atEnd(Bytes, Cur))
    return false;
  P.Code = static_cast<ErrorCode>(Code);
  return true;
}

std::string llvmmd::encodeSubscribe(const SubscribePayload &P) {
  std::string Out;
  appendU64LE(Out, P.JobId);
  return Out;
}

bool llvmmd::decodeSubscribe(const std::string &Bytes, SubscribePayload &P) {
  size_t Cur = 0;
  return readU64LE(Bytes.data(), Bytes.size(), Cur, P.JobId) &&
         atEnd(Bytes, Cur);
}

std::string llvmmd::encodeJobId(const JobIdPayload &P) {
  std::string Out;
  appendU64LE(Out, P.JobId);
  Out.push_back(static_cast<char>(P.Deduplicated));
  appendU32LE(Out, P.ReplayedFrames);
  return Out;
}

bool llvmmd::decodeJobId(const std::string &Bytes, JobIdPayload &P) {
  size_t Cur = 0;
  return readU64LE(Bytes.data(), Bytes.size(), Cur, P.JobId) &&
         readU8(Bytes, Cur, P.Deduplicated) &&
         readU32LE(Bytes.data(), Bytes.size(), Cur, P.ReplayedFrames) &&
         atEnd(Bytes, Cur);
}

std::string llvmmd::encodeWorkerHello(const WorkerHelloPayload &P) {
  std::string Out;
  appendU64LE(Out, P.RouterId);
  appendU32LE(Out, P.WorkerIndex);
  appendU64LE(Out, P.Generation);
  return Out;
}

bool llvmmd::decodeWorkerHello(const std::string &Bytes,
                               WorkerHelloPayload &P) {
  size_t Cur = 0;
  return readU64LE(Bytes.data(), Bytes.size(), Cur, P.RouterId) &&
         readU32LE(Bytes.data(), Bytes.size(), Cur, P.WorkerIndex) &&
         readU64LE(Bytes.data(), Bytes.size(), Cur, P.Generation) &&
         atEnd(Bytes, Cur);
}

std::string llvmmd::encodeWorkerHelloOk(const WorkerHelloOkPayload &P) {
  std::string Out;
  appendU64LE(Out, P.Pid);
  appendU64LE(Out, P.JobsCompleted);
  appendLPString(Out, P.StorePath);
  return Out;
}

bool llvmmd::decodeWorkerHelloOk(const std::string &Bytes,
                                 WorkerHelloOkPayload &P) {
  size_t Cur = 0;
  return readU64LE(Bytes.data(), Bytes.size(), Cur, P.Pid) &&
         readU64LE(Bytes.data(), Bytes.size(), Cur, P.JobsCompleted) &&
         readLPString(Bytes.data(), Bytes.size(), Cur, P.StorePath) &&
         atEnd(Bytes, Cur);
}
