//===- Protocol.h - Validation service wire protocol ------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed wire protocol between the validation daemon and its clients.
///
/// Every message is one length-prefixed frame:
///
///   u32 LE payload length | u8 frame type | payload bytes
///
/// The reader never trusts the length field: a frame claiming more than the
/// negotiated maximum is rejected before a byte of its payload is read, a
/// short read (peer died mid-frame) surfaces as a clean disconnect, and an
/// unknown frame type or undecodable payload is a protocol error that
/// closes the connection — never undefined behavior.
///
/// A connection starts with a versioned handshake: the client's Hello
/// carries the protocol version and its *verdict-store config digest* (rule
/// mask, sharing strategy, fixpoint budget, semantics salt — exactly the
/// header gate of the persistent VerdictStore). The server compares both
/// against its own; a mismatch is rejected with an Error frame, never
/// silently served, because a verdict proven under different rules is not
/// the verdict the client asked for.
///
/// After HelloOk the client may Submit jobs (profile-generated or inline IR
/// modules), request Stats, Ping, or request Shutdown. Job responses
/// stream: one Function frame per function (the single-line JSON object of
/// functionEntryToJSON, byte-identical to the entry in the final report), a
/// ModuleReport frame per module as soon as that module's validation
/// finishes, the final authoritative SuiteReport frame (exactly the bytes
/// suiteToJSON emits for a batch run of the same inputs), and a JobDone
/// frame carrying the engine's cache-stat deltas for the job — which is how
/// `--expect-warm` keeps its meaning end to end over the wire.
///
/// Version 2 adds the fleet vocabulary (src/fleet/):
///  * Subscribe (client -> router) joins a running job's response stream
///    mid-flight by job id; already-sent frames are replayed from the
///    router's bounded per-job buffer, then the live tail follows.
///  * JobId (router -> client) answers a Submit that was deduplicated onto
///    an already-running identical job, or a Subscribe — it names the
///    shared job and how many frames were replayed.
///  * WorkerHello / WorkerHelloOk let the router verify, after the normal
///    digest-gated handshake, that the process behind a worker socket is
///    exactly the worker it spawned (pid check) and which store shard it
///    persists to — a stale socket of a crashed generation can never be
///    mistaken for a live worker.
///
/// Version 3 adds the telemetry vocabulary:
///  * Metrics (client -> server) requests a scrape; MetricsReply carries
///    the raw Prometheus text-exposition payload (like StatsReply carries
///    raw JSON). A server answers with its own registry; the fleet router
///    answers with a roll-up — its own fleet metrics plus every live
///    worker's scrape re-labeled `worker="N"` — so one scrape shows the
///    whole fleet. Metrics are a diagnostic channel only: verdict-bearing
///    frames are byte-identical whether or not anything ever scrapes.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_SERVER_PROTOCOL_H
#define LLVMMD_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace llvmmd {

/// Bumped on any wire-format change; a version mismatch fails the
/// handshake in either direction. v2: fleet frames (Subscribe, JobId,
/// WorkerHello/WorkerHelloOk). v3: telemetry frames (Metrics,
/// MetricsReply). Still v3: the trace extension (Submit carries a
/// trailing TraceId, JobDone a trailing TraceId + span blob) is encoded
/// only for traced jobs and decoded only if present, so both directions
/// interoperate with pre-trace v3 peers — untraced traffic is
/// byte-identical, and a traced field reaching an old decoder only fails
/// that one frame's strict-length check, never the handshake.
constexpr uint32_t ServerProtocolVersion = 3;

/// Default ceiling on one frame's payload. Large enough for a suite report
/// over a big module set, small enough that a garbage length field cannot
/// drive an allocation anywhere near memory limits.
constexpr uint32_t DefaultMaxFrameBytes = 32u << 20;

enum class FrameType : uint8_t {
  // Client -> server.
  Hello = 1,
  Submit = 2,
  Stats = 3,
  Ping = 4,
  Shutdown = 5,
  Subscribe = 6,   ///< join a running job's stream by id (fleet router)
  WorkerHello = 7, ///< router -> worker identity check after the handshake
  Metrics = 8,     ///< scrape request; answered with MetricsReply

  // Server -> client.
  HelloOk = 64,
  Accepted = 65,
  Function = 66,
  ModuleReport = 67,
  SuiteReport = 68,
  JobDone = 69,
  StatsReply = 70,
  Pong = 71,
  Error = 72,
  JobId = 73,         ///< submission deduplicated / subscription attached
  WorkerHelloOk = 74, ///< worker identity reply (pid + shard path)
  MetricsReply = 75,  ///< raw Prometheus text-exposition payload
};

enum class ErrorCode : uint8_t {
  Protocol = 1,  ///< malformed/oversized/unexpected frame; connection closes
  Handshake = 2, ///< version or config-digest mismatch; connection closes
  QueueFull = 3, ///< admission control rejected the job; connection stays up
  BadSubmit = 4, ///< unknown profile / unparsable module; connection stays up
  WorkerLost = 5, ///< the fleet lost the job's worker past the requeue budget
  UnknownJob = 6, ///< Subscribe named a job that is not running (or the
                  ///< replay window was exceeded); connection stays up
};

struct Frame {
  FrameType Type = FrameType::Error;
  std::string Payload;
};

enum class ReadStatus : uint8_t {
  Ok,
  Eof,       ///< orderly close (or shutdown) before a frame header
  Truncated, ///< peer died mid-frame
  Oversized, ///< length field exceeds the cap; nothing further was read
  IOError,
};

/// Writes one frame to the connected socket \p Fd (blocking, SIGPIPE
/// suppressed). Returns false when the peer is gone.
bool writeFrame(int Fd, FrameType Type, const std::string &Payload);

/// Reads one frame (blocking). \p MaxPayload bounds the length field.
ReadStatus readFrame(int Fd, Frame &F, uint32_t MaxPayload);

//===----------------------------------------------------------------------===//
// Frame payloads
//===----------------------------------------------------------------------===//

struct HelloPayload {
  uint32_t Version = ServerProtocolVersion;
  uint64_t ConfigDigest = 0; ///< verdictStoreConfigDigest of the rule config
};

/// The server's half of the handshake.
struct HelloOkPayload {
  uint32_t Version = ServerProtocolVersion;
  uint64_t ConfigDigest = 0;
  uint32_t EngineThreads = 0;
  uint8_t TriageEnabled = 0;
};

/// Source/format selector of one submitted module. Wire-compatible with
/// the original boolean "from profile" byte: 0 keeps its old meaning
/// (inline text, format auto-detected — which is exactly what old clients
/// sent) and 1 still means a generated profile; 2 and 3 pin the inline
/// text's format explicitly.
enum SubmitSource : uint8_t {
  SubmitInlineAuto = 0, ///< inline text, content-sniffed mini-IR vs .ll
  SubmitProfile = 1,    ///< server-generated benchmark profile
  SubmitInlineMini = 2, ///< inline text, forced native mini-IR
  SubmitInlineLLVM = 3, ///< inline text, forced LLVM .ll import
};

/// One module of a submission: either a named BenchmarkProfile the server
/// generates (FunctionCount optionally overridden — tests and benchmarks
/// shrink profiles this way) or inline IR text the server loads through
/// the shared ModuleLoader (see SubmitSource for the format byte).
struct SubmitModule {
  uint8_t Source = SubmitProfile;
  std::string Name;      ///< profile name, or module name for inline IR
  std::string Text;      ///< IR text for the inline sources
  uint32_t FnCount = 0;  ///< profile FunctionCount override; 0 = default
};

struct SubmitPayload {
  std::vector<SubmitModule> Modules;
  /// Distributed-tracing id minted at the front door (router or
  /// `batch_validate`); 0 = untraced. **Optional trailing field**: encoded
  /// only when nonzero, so untraced traffic is byte-identical to the
  /// pre-trace v3 wire format and a decoder that stops at the module list
  /// (an old peer) simply never sees a traced submission's id. TraceId
  /// never contributes to job identity — the fleet's dedup key zeroes it
  /// before hashing.
  uint64_t TraceId = 0;
};

struct AcceptedPayload {
  uint64_t JobId = 0;
  uint32_t QueuePosition = 0; ///< jobs ahead of this one when admitted
};

/// Streamed per-function verdict: \p Json is functionEntryToJSON's
/// single-line object, byte-identical to the entry in the final report.
struct FunctionPayload {
  uint32_t ModuleIndex = 0;
  std::string ModuleName;
  std::string Json;
};

struct ModuleReportPayload {
  uint32_t ModuleIndex = 0;
  std::string Json; ///< reportToJSON bytes for this module
};

/// End-of-job summary: the engine's cache-stat deltas attributable to this
/// job. Misses == 0 and TriageMisses == 0 is the served form of the
/// `--expect-warm` invariant.
struct JobDonePayload {
  uint64_t JobId = 0;
  /// 0 = every transformed function validated; 2 = some did not (the
  /// batch_validate exit-code convention).
  uint8_t Status = 0;
  uint64_t Hits = 0;
  uint64_t WarmHits = 0;
  uint64_t Misses = 0;
  uint64_t SkippedIdentical = 0;
  uint64_t TriageHits = 0;
  uint64_t TriageWarmHits = 0;
  uint64_t TriageMisses = 0;
  uint64_t WallMicroseconds = 0;
  /// Echo of the submission's trace id (0 = untraced); optional trailing
  /// field, same compatibility contract as SubmitPayload::TraceId.
  uint64_t TraceId = 0;
  /// The executing server's span buffer for this job, serialized by
  /// `traceSerializeEvents` — shipped back so the router can merge worker
  /// spans into one flame. Present only when TraceId is nonzero; the
  /// router strips it (keeping TraceId) before fanning JobDone out to
  /// subscribers.
  std::string TraceBlob;
};

struct ErrorPayload {
  ErrorCode Code = ErrorCode::Protocol;
  std::string Message;
};

/// Client -> router: attach to job \p JobId's response stream mid-flight.
struct SubscribePayload {
  uint64_t JobId = 0;
};

/// Router -> client: the submission joined (or a Subscribe attached to) an
/// already-running job. \p ReplayedFrames counts the buffered response
/// frames that were replayed before the live tail.
struct JobIdPayload {
  uint64_t JobId = 0;
  uint8_t Deduplicated = 0; ///< 1 when a Submit was folded onto a live job
  uint32_t ReplayedFrames = 0;
};

/// Router -> worker, after the normal handshake: "prove you are the process
/// I spawned". The reply's pid is checked against the spawned child, so a
/// stale socket left by a dead generation can never be dispatched to.
struct WorkerHelloPayload {
  uint64_t RouterId = 0;
  uint32_t WorkerIndex = 0;
  uint64_t Generation = 0;
};

struct WorkerHelloOkPayload {
  uint64_t Pid = 0;
  uint64_t JobsCompleted = 0;
  std::string StorePath; ///< the worker's verdict-store shard ("" = none)
};

std::string encodeHello(const HelloPayload &P);
bool decodeHello(const std::string &Bytes, HelloPayload &P);
std::string encodeHelloOk(const HelloOkPayload &P);
bool decodeHelloOk(const std::string &Bytes, HelloOkPayload &P);
std::string encodeSubmit(const SubmitPayload &P);
bool decodeSubmit(const std::string &Bytes, SubmitPayload &P);
std::string encodeAccepted(const AcceptedPayload &P);
bool decodeAccepted(const std::string &Bytes, AcceptedPayload &P);
std::string encodeFunction(const FunctionPayload &P);
bool decodeFunction(const std::string &Bytes, FunctionPayload &P);
std::string encodeModuleReport(const ModuleReportPayload &P);
bool decodeModuleReport(const std::string &Bytes, ModuleReportPayload &P);
std::string encodeJobDone(const JobDonePayload &P);
bool decodeJobDone(const std::string &Bytes, JobDonePayload &P);
std::string encodeError(const ErrorPayload &P);
bool decodeError(const std::string &Bytes, ErrorPayload &P);
std::string encodeSubscribe(const SubscribePayload &P);
bool decodeSubscribe(const std::string &Bytes, SubscribePayload &P);
std::string encodeJobId(const JobIdPayload &P);
bool decodeJobId(const std::string &Bytes, JobIdPayload &P);
std::string encodeWorkerHello(const WorkerHelloPayload &P);
bool decodeWorkerHello(const std::string &Bytes, WorkerHelloPayload &P);
std::string encodeWorkerHelloOk(const WorkerHelloOkPayload &P);
bool decodeWorkerHelloOk(const std::string &Bytes, WorkerHelloOkPayload &P);

} // namespace llvmmd

#endif // LLVMMD_SERVER_PROTOCOL_H
