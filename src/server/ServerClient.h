//===- ServerClient.h - Validation service client library -------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reusable client half of the validation service: connect (unix or
/// TCP), handshake (protocol version + verdict-store config digest — the
/// server refuses to serve a differently-configured client), submit jobs,
/// and consume the streamed response frames as typed events. Blocking and
/// single-threaded by design: one in-flight job per client, events arrive
/// in submission order.
///
/// The suite-report event's JSON is byte-identical to what a batch
/// `batch_validate --json` run over the same inputs and cache state emits,
/// and the JobDone event carries the engine's cache-stat deltas for the
/// job — so `--expect-warm` (no verdict and no triage result computed from
/// scratch) can be enforced by the client exactly as the batch CLI does.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_SERVER_SERVERCLIENT_H
#define LLVMMD_SERVER_SERVERCLIENT_H

#include "server/Protocol.h"

#include <cstdint>
#include <string>

namespace llvmmd {

class ServerClient {
public:
  ServerClient() = default;
  ~ServerClient();

  ServerClient(const ServerClient &) = delete;
  ServerClient &operator=(const ServerClient &) = delete;

  /// One response event, in wire order. Function/ModuleReport events
  /// stream while the job runs; SuiteReport then JobDone end it. An Error
  /// event ends the job (or, for Protocol/Handshake codes, the
  /// connection).
  struct Event {
    enum class Kind : uint8_t {
      Function,
      ModuleReport,
      SuiteReport,
      JobDone,
      Error,
    };
    Kind K = Kind::Error;
    FunctionPayload Function;
    ModuleReportPayload Module;
    std::string SuiteJson;
    JobDonePayload Done;
    ErrorPayload Error;
  };

  /// Connect-retry policy: opt-in (default 0 retries keeps the historical
  /// fail-fast behavior). When the initial connect fails with a
  /// worker-restarting-under-us error — ECONNREFUSED, ECONNRESET, or (unix
  /// sockets only) the socket file not existing yet — the connect is
  /// retried up to \p Retries more times with exponential backoff:
  /// attempt k (0-based) sleeps retryDelayMs(k) before retrying. Any other
  /// errno fails immediately.
  struct RetryPolicy {
    unsigned Retries = 0;
    unsigned BaseDelayMs = 10;
    unsigned MaxDelayMs = 1000;
  };

  /// The deterministic backoff schedule: min(BaseDelayMs << Attempt,
  /// MaxDelayMs), saturating instead of overflowing. Pure so tests can pin
  /// the schedule without sleeping.
  static unsigned retryDelayMs(const RetryPolicy &P, unsigned Attempt);

  bool connectUnix(const std::string &Path, std::string *Error = nullptr);
  bool connectTcp(const std::string &Host, uint16_t Port,
                  std::string *Error = nullptr);
  bool isConnected() const { return Fd >= 0; }
  void close();

  /// Sends Hello with \p ConfigDigest and waits for HelloOk. On rejection
  /// (version/digest mismatch) returns false with the server's message in
  /// \p Error.
  bool handshake(uint64_t ConfigDigest, HelloOkPayload *Info = nullptr,
                 std::string *Error = nullptr);

  /// Submits a job and waits for Accepted (or an admission Error). Against
  /// a fleet router the reply may instead be a JobId frame — the submission
  /// was deduplicated onto an already-running identical job; \p Accepted is
  /// filled from it and \p Deduplicated (when non-null) is set. The
  /// response frames are then consumed with nextEvent() until JobDone.
  bool submit(const SubmitPayload &Req, AcceptedPayload *Accepted = nullptr,
              std::string *Error = nullptr, bool *Deduplicated = nullptr);

  /// Fleet router only: join job \p JobId's response stream mid-flight.
  /// Buffered frames replay first, then the live tail; consume with
  /// nextEvent() until JobDone.
  bool subscribe(uint64_t JobId, JobIdPayload *Info = nullptr,
                 std::string *Error = nullptr);

  /// Router -> worker identity check (after handshake): returns the
  /// worker's pid and store shard so the caller can verify it is talking to
  /// the process it spawned, not a stale socket.
  bool workerHello(const WorkerHelloPayload &Req, WorkerHelloOkPayload *Info,
                   std::string *Error = nullptr);

  /// Reads the next response event. Returns false on connection loss or a
  /// protocol violation (with \p Error set); an in-protocol Error frame is
  /// returned as an Event, not a failure.
  bool nextEvent(Event &E, std::string *Error = nullptr);

  /// Requests the server's /stats JSON.
  bool stats(std::string *Json, std::string *Error = nullptr);

  /// Requests a /metrics scrape (Prometheus text exposition format). A
  /// fleet router answers with the fleet-wide roll-up.
  bool metrics(std::string *Text, std::string *Error = nullptr);

  bool ping(std::string *Error = nullptr);

  /// Fire-and-forget graceful-shutdown request; the server drains its
  /// queue and hangs up (observed as EOF on the next read).
  bool requestShutdown();

  /// Raw frame access for protocol-robustness tests.
  bool sendRaw(FrameType Type, const std::string &Payload);
  int fd() const { return Fd; }

  /// Frame payload ceiling applied to *received* frames.
  uint32_t MaxFrameBytes = DefaultMaxFrameBytes;

  /// Connect-retry policy for connectUnix/connectTcp (default: no retries).
  RetryPolicy Retry;

private:
  bool readExpect(FrameType Want, Frame &F, std::string *Error);

  int Fd = -1;
};

} // namespace llvmmd

#endif // LLVMMD_SERVER_SERVERCLIENT_H
