//===- ValidationServer.cpp - Persistent validation daemon --------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "server/ValidationServer.h"

#include "driver/ModuleLoader.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "support/Http.h"
#include "support/Log.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#ifndef _WIN32
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace llvmmd;

namespace {

uint64_t elapsedMicroseconds(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Server-level instruments in the process registry: the /metrics side of
/// the /stats counters, plus the latency distributions /stats cannot
/// carry. Registered once per process; a test constructing several
/// servers keeps accumulating into the same (monotonic) instruments.
struct ServerMetrics {
  Gauge &QueueDepth;
  Histogram &QueueWaitUs;
  Histogram &JobUs;
  Counter &JobsCompleted;
  Counter &JobsRejected;
  Counter &HandshakeErrors;
  Counter &ProtocolErrors;
  Histogram &CheckpointUs;
};

ServerMetrics &serverMetrics() {
  static ServerMetrics M{
      telemetry().gauge("llvmmd_server_queue_depth",
                        "Jobs queued, not yet running"),
      telemetry().histogram(
          "llvmmd_server_queue_wait_us",
          "Accepted to executor-start wait (microseconds)",
          defaultLatencyBoundsMicros()),
      telemetry().histogram("llvmmd_server_job_us",
                            "End-to-end job wall time (microseconds)",
                            defaultLatencyBoundsMicros()),
      telemetry().counter("llvmmd_server_jobs_completed_total",
                          "Jobs run to completion"),
      telemetry().counter("llvmmd_server_jobs_rejected_total",
                          "Submissions refused by admission control"),
      telemetry().counter("llvmmd_server_handshake_errors_total",
                          "Handshakes rejected (version or digest mismatch)"),
      telemetry().counter("llvmmd_server_protocol_errors_total",
                          "Malformed, oversized or unexpected frames"),
      telemetry().histogram("llvmmd_server_checkpoint_us",
                            "Verdict-store shard checkpoint wall time "
                            "(microseconds)",
                            defaultLatencyBoundsMicros()),
  };
  return M;
}

} // namespace

ValidationServer::ValidationServer(ServerConfig Config)
    : Cfg(std::move(Config)) {
  Pipeline = Cfg.Pipeline.empty() ? getPaperPipeline() : Cfg.Pipeline;
  // The server owns the checkpoint cadence; an engine that saved after
  // every run would rewrite the store once per job even when
  // CheckpointEveryJobs asks for less.
  Cfg.Engine.CacheSave = false;
}

ValidationServer::~ValidationServer() { stop(); }

uint64_t ValidationServer::configDigest() const {
  return verdictStoreConfigDigest(Cfg.Engine.Rules);
}

unsigned ValidationServer::engineThreads() const {
  return Engine ? Engine->getThreadCount() : 0;
}

int ValidationServer::boundHttpPort() const {
  return Http ? Http->boundPort() : -1;
}

ServerCounters ValidationServer::counters() const {
  std::lock_guard<std::mutex> G(StatsLock);
  return Counters;
}

EngineCacheStats ValidationServer::engineStats() const {
  std::lock_guard<std::mutex> G(StatsLock);
  return EngineSnapshot;
}

std::string ValidationServer::statsJSON() const {
  ServerCounters C;
  EngineCacheStats E;
  {
    std::lock_guard<std::mutex> G(StatsLock);
    C = Counters;
    E = EngineSnapshot;
  }
  size_t Depth;
  {
    std::lock_guard<std::mutex> G(QueueLock);
    Depth = Queue.size();
  }
  std::ostringstream OS;
  OS << "{\"schema\": \"llvmmd-server-stats-v1\""
     << ", \"connections_accepted\": " << C.ConnectionsAccepted
     << ", \"handshakes_rejected\": " << C.HandshakesRejected
     << ", \"protocol_errors\": " << C.ProtocolErrors << ", \"jobs\": {"
     << "\"submitted\": " << C.JobsSubmitted
     << ", \"completed\": " << C.JobsCompleted
     << ", \"rejected\": " << C.JobsRejected
     << ", \"errored\": " << C.JobsErrored
     << ", \"queue_depth\": " << Depth
     << ", \"max_queue_depth\": " << C.MaxQueueDepth
     << ", \"job_us\": " << C.JobMicroseconds
     << ", \"queue_wait_us\": " << C.QueueWaitMicroseconds << '}'
     << ", \"functions_reported\": " << C.FunctionsReported
     << ", \"modules_validated\": " << C.ModulesValidated
     << ", \"checkpoints\": " << C.Checkpoints << ", \"engine\": {"
     << "\"hits\": " << E.Hits << ", \"warm_hits\": " << E.WarmHits
     << ", \"misses\": " << E.Misses
     << ", \"skipped_identical\": " << E.SkippedIdentical
     << ", \"entries\": " << E.Entries
     << ", \"store_loaded\": " << E.StoreLoaded
     << ", \"store_saved\": " << E.StoreSaved
     << ", \"triage_hits\": " << E.TriageHits
     << ", \"triage_warm_hits\": " << E.TriageWarmHits
     << ", \"triage_misses\": " << E.TriageMisses
     << ", \"triage_store_loaded\": " << E.TriageStoreLoaded << "}}\n";
  return OS.str();
}

std::string ValidationServer::metricsText() const {
  // Gauges describe "now"; refresh them from the live queue before the
  // registry snapshot so a scrape never reports a stale depth.
  {
    std::lock_guard<std::mutex> G(QueueLock);
    serverMetrics().QueueDepth.set(static_cast<int64_t>(Queue.size()));
  }
  return telemetry().renderPrometheus();
}

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

bool ValidationServer::listenOn(int Fd, const std::string &What,
                                std::string *Error) {
#ifndef _WIN32
  if (Fd < 0 || ::listen(Fd, 64) != 0) {
    if (Error)
      *Error = "cannot listen on " + What;
    if (Fd >= 0)
      ::close(Fd);
    return false;
  }
  ListenFds.push_back(Fd);
  return true;
#else
  (void)Fd;
  (void)What;
  if (Error)
    *Error = "server sockets are POSIX-only";
  return false;
#endif
}

bool ValidationServer::start(std::string *Error) {
#ifndef _WIN32
  {
    std::lock_guard<std::mutex> G(LifeLock);
    if (Started) {
      if (Error)
        *Error = "server already started";
      return false;
    }
  }
  if (Cfg.UnixPath.empty() && Cfg.TcpPort < 0) {
    if (Error)
      *Error = "no listener configured (need UnixPath and/or TcpPort)";
    return false;
  }

  if (!Cfg.UnixPath.empty()) {
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (Cfg.UnixPath.size() >= sizeof(Addr.sun_path)) {
      if (Error)
        *Error = "unix socket path too long: " + Cfg.UnixPath;
      return false;
    }
    std::strncpy(Addr.sun_path, Cfg.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    // A stale socket file from a crashed daemon would fail the bind; the
    // path is ours by configuration, so reclaim it.
    ::unlink(Cfg.UnixPath.c_str());
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0 ||
        ::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      if (Error)
        *Error = "cannot bind unix socket '" + Cfg.UnixPath + "'";
      if (Fd >= 0)
        ::close(Fd);
      return false;
    }
    if (!listenOn(Fd, "unix socket '" + Cfg.UnixPath + "'", Error))
      return false;
  }

  if (Cfg.TcpPort >= 0) {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    int One = 1;
    if (Fd >= 0)
      ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(static_cast<uint16_t>(Cfg.TcpPort));
    if (Fd < 0 ||
        ::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      if (Error)
        *Error = "cannot bind 127.0.0.1:" + std::to_string(Cfg.TcpPort);
      if (Fd >= 0)
        ::close(Fd);
      return false;
    }
    socklen_t AddrLen = sizeof(Addr);
    ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen);
    BoundTcpPort = ntohs(Addr.sin_port);
    if (!listenOn(Fd, "tcp port " + std::to_string(BoundTcpPort), Error))
      return false;
  }

  if (!Cfg.HttpMetrics.empty()) {
    Http = std::make_unique<HttpServer>();
    Http->handle("/metrics", [this] {
      HttpResponse R;
      R.ContentType = PrometheusContentType;
      R.Body = metricsText();
      return R;
    });
    Http->handle("/healthz", [] {
      HttpResponse R;
      R.Body = "ok\n";
      return R;
    });
    if (!Http->start(Cfg.HttpMetrics, Error)) {
      Http.reset();
      for (int Fd : ListenFds)
        ::close(Fd);
      ListenFds.clear();
      return false;
    }
  }

  // The engine loads the warm store here (CacheLoad), before any client
  // can connect — a half-loaded cache can never serve a request.
  Engine = std::make_unique<ValidationEngine>(Cfg.Engine);
  {
    std::lock_guard<std::mutex> G(StatsLock);
    EngineSnapshot = Engine->cacheStats();
  }

  Accepting = true;
  Started = true;
  Stopped = false;
  StopRequested = false;
  AcceptStop = false;
  AcceptThread = std::thread([this] { acceptLoop(); });
  ExecutorThread = std::thread([this] { executorLoop(); });
  return true;
#else
  if (Error)
    *Error = "the validation server is POSIX-only";
  return false;
#endif
}

void ValidationServer::requestStop() {
  requestStopFromSignal();
  // Prompt wakeups for the common (non-signal) path; waiters poll on a
  // timeout anyway, so a missed notify only costs the poll interval.
  QueueCV.notify_all();
  LifeCV.notify_all();
}

void ValidationServer::stop() {
#ifndef _WIN32
  if (!Started || Stopped)
    return;
  requestStop();

  if (AcceptThread.joinable())
    AcceptThread.join();
  // The executor drains every admitted job (clients that stayed connected
  // get full responses) and takes the final checkpoint on its way out.
  if (ExecutorThread.joinable())
    ExecutorThread.join();

  // Unblock connection reads; the threads remove themselves from Conns and
  // close their own fds, so no fd is ever closed while another thread can
  // still act on it. Fd is read under the connection's write lock: a
  // thread racing us through its close path leaves -1 behind.
  {
    std::unique_lock<std::mutex> G(ConnLock);
    for (const auto &C : Conns) {
      std::lock_guard<std::mutex> WG(C->WriteLock);
      if (C->Fd >= 0)
        ::shutdown(C->Fd, SHUT_RDWR);
    }
    ConnDoneCV.wait(G, [this] { return Conns.empty(); });
  }

  for (int Fd : ListenFds)
    ::close(Fd);
  ListenFds.clear();
  if (!Cfg.UnixPath.empty())
    ::unlink(Cfg.UnixPath.c_str());
  // The HTTP sidecar outlives the drain (a scrape during shutdown still
  // answers) and goes down last.
  if (Http)
    Http->stop();

  Stopped = true;
  LifeCV.notify_all();
#endif
}

void ValidationServer::wait() {
  {
    std::unique_lock<std::mutex> G(LifeLock);
    // Bounded waits: a signal handler sets the flags without notifying.
    while (!LifeCV.wait_for(G, std::chrono::milliseconds(200), [this] {
      return StopRequested.load() || Stopped.load();
    }))
      ;
  }
  stop();
}

bool ValidationServer::isStopped() const { return Stopped; }

void ValidationServer::setPaused(bool P) {
  Paused = P;
  QueueCV.notify_all();
}

//===----------------------------------------------------------------------===//
// Accepting and serving connections
//===----------------------------------------------------------------------===//

void ValidationServer::acceptLoop() {
#ifndef _WIN32
  std::vector<pollfd> Polls;
  for (int Fd : ListenFds)
    Polls.push_back({Fd, POLLIN, 0});
  while (!AcceptStop) {
    int N = ::poll(Polls.data(), Polls.size(), /*timeout_ms=*/100);
    if (N <= 0)
      continue;
    for (pollfd &P : Polls) {
      if (!(P.revents & POLLIN))
        continue;
      int Fd = ::accept(P.fd, nullptr, nullptr);
      if (Fd < 0)
        continue;
      // Bounded sends: a client that stops *reading* must not park the
      // executor in sendAll forever (it would also deadlock graceful
      // shutdown, which drains the queue before tearing connections
      // down). On timeout the write fails, the connection is marked dead,
      // and the job completes without a consumer.
      timeval SendTimeout{30, 0};
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &SendTimeout,
                   sizeof(SendTimeout));
      auto C = std::make_shared<Connection>();
      C->Fd = Fd;
      {
        std::lock_guard<std::mutex> G(ConnLock);
        C->Id = NextConnId++;
        Conns.push_back(C);
      }
      {
        std::lock_guard<std::mutex> G(StatsLock);
        ++Counters.ConnectionsAccepted;
      }
      // Detached on purpose: the thread's only shared state is the
      // refcounted Connection and the Conns registry it removes itself
      // from; stop() synchronizes on Conns becoming empty, not on joins.
      std::thread([this, C] { handleConnection(C); }).detach();
    }
  }
#endif
}

bool ValidationServer::sendFrame(Connection &C, FrameType T,
                                 const std::string &Payload) {
  if (!C.Alive.load())
    return false;
  std::lock_guard<std::mutex> G(C.WriteLock);
  // Re-check under the lock: the owning thread closes (and -1s) the fd
  // under this same lock, so a write can never hit a reused descriptor.
  if (C.Fd < 0 || !writeFrame(C.Fd, T, Payload)) {
    C.Alive = false;
    return false;
  }
  return true;
}

void ValidationServer::sendError(Connection &C, ErrorCode Code,
                                 const std::string &Msg) {
  ErrorPayload E;
  E.Code = Code;
  E.Message = Msg;
  sendFrame(C, FrameType::Error, encodeError(E));
}

void ValidationServer::handleConnection(std::shared_ptr<Connection> C) {
#ifndef _WIN32
  for (;;) {
    Frame F;
    ReadStatus RS = readFrame(C->Fd, F, Cfg.MaxFrameBytes);
    if (RS == ReadStatus::Eof)
      break;
    if (RS != ReadStatus::Ok) {
      // Truncated, oversized or unreadable input: report (best effort,
      // the peer may be gone) and drop the connection. Nothing a client
      // sends may take the daemon down.
      {
        std::lock_guard<std::mutex> G(StatsLock);
        ++Counters.ProtocolErrors;
      }
      serverMetrics().ProtocolErrors.inc();
      logWarn("server",
              std::string("dropping connection: ") +
                  (RS == ReadStatus::Oversized ? "oversized frame"
                                               : "truncated or unreadable "
                                                 "frame"));
      sendError(*C, ErrorCode::Protocol,
                RS == ReadStatus::Oversized
                    ? "frame exceeds the size limit"
                    : "truncated or unreadable frame");
      break;
    }
    if (!handleFrame(*C, F))
      break;
  }
  C->Alive = false;
  {
    // Close under the connection's write lock: an executor mid-stream for
    // this client either finishes its write first or observes Fd == -1,
    // never a descriptor the kernel may already have handed to another
    // accept().
    std::lock_guard<std::mutex> WG(C->WriteLock);
    ::close(C->Fd);
    C->Fd = -1;
  }
  {
    // Deregister and notify under one lock, so the notify completes
    // before stop()/the destructor can observe Conns empty and tear the
    // condition variable down under this detached thread.
    std::lock_guard<std::mutex> G(ConnLock);
    for (size_t I = 0; I < Conns.size(); ++I) {
      if (Conns[I].get() == C.get()) {
        Conns.erase(Conns.begin() + I);
        break;
      }
    }
    ConnDoneCV.notify_all();
  }
#endif
}

bool ValidationServer::handleFrame(Connection &C, const Frame &F) {
  // The handshake must come first, and exactly once.
  if (!C.Handshaken) {
    if (F.Type != FrameType::Hello) {
      {
        std::lock_guard<std::mutex> G(StatsLock);
        ++Counters.ProtocolErrors;
      }
      serverMetrics().ProtocolErrors.inc();
      sendError(C, ErrorCode::Protocol, "expected Hello");
      return false;
    }
    HelloPayload H;
    if (!decodeHello(F.Payload, H)) {
      {
        std::lock_guard<std::mutex> G(StatsLock);
        ++Counters.ProtocolErrors;
      }
      serverMetrics().ProtocolErrors.inc();
      sendError(C, ErrorCode::Protocol, "undecodable Hello");
      return false;
    }
    if (H.Version != ServerProtocolVersion) {
      {
        std::lock_guard<std::mutex> G(StatsLock);
        ++Counters.HandshakesRejected;
      }
      serverMetrics().HandshakeErrors.inc();
      logWarn("server", "handshake rejected: client speaks protocol v" +
                            std::to_string(H.Version) + ", server v" +
                            std::to_string(ServerProtocolVersion));
      sendError(C, ErrorCode::Handshake,
                "protocol version " + std::to_string(H.Version) +
                    " (server speaks " +
                    std::to_string(ServerProtocolVersion) + ")");
      return false;
    }
    if (H.ConfigDigest != configDigest()) {
      // The whole point of carrying the digest: a client configured for
      // different rules must hear "no", never receive verdicts proven
      // under rules it did not ask for.
      {
        std::lock_guard<std::mutex> G(StatsLock);
        ++Counters.HandshakesRejected;
      }
      serverMetrics().HandshakeErrors.inc();
      logWarn("server", "handshake rejected: config digest mismatch");
      sendError(C, ErrorCode::Handshake,
                "config digest mismatch: server validates under a "
                "different rule configuration");
      return false;
    }
    HelloOkPayload Ok;
    Ok.ConfigDigest = configDigest();
    Ok.EngineThreads = engineThreads();
    Ok.TriageEnabled = Cfg.Engine.Triage.Enabled;
    C.Handshaken = true;
    return sendFrame(C, FrameType::HelloOk, encodeHelloOk(Ok));
  }

  switch (F.Type) {
  case FrameType::Submit: {
    SubmitPayload S;
    if (!decodeSubmit(F.Payload, S) || S.Modules.empty()) {
      {
        std::lock_guard<std::mutex> G(StatsLock);
        ++Counters.ProtocolErrors;
      }
      serverMetrics().ProtocolErrors.inc();
      sendError(C, ErrorCode::Protocol, "undecodable or empty Submit");
      return false;
    }
    // Re-find the shared_ptr for this connection so the executor keeps it
    // alive even after the client disconnects.
    Job J;
    J.Req = std::move(S);
    {
      std::lock_guard<std::mutex> CG(ConnLock);
      for (const auto &Known : Conns)
        if (Known.get() == &C)
          J.Conn = Known;
    }
    if (!J.Conn)
      return false; // connection already torn down

    // Admission decision under the queue lock; the (possibly slow) socket
    // writes happen after it so one stalled client cannot block admission
    // for everyone.
    uint64_t JobId = 0;
    uint32_t Position = 0;
    std::shared_ptr<JobGate> Gate;
    std::string RejectReason;
    {
      std::lock_guard<std::mutex> G(QueueLock);
      if (!Accepting) {
        RejectReason = "server is shutting down";
      } else if (Queue.size() >= Cfg.MaxQueuedJobs) {
        RejectReason =
            "queue full (" + std::to_string(Queue.size()) + " jobs pending)";
      } else {
        JobId = NextJobId++;
        Position = static_cast<uint32_t>(Queue.size());
        J.Id = JobId;
        Gate = std::make_shared<JobGate>();
        J.Gate = Gate;
        J.Enqueued = std::chrono::steady_clock::now();
        // A traced submission turns span collection on for its own sake
        // (a fleet worker has no --trace of its own); the executor turns
        // it back off once no traced work remains. Enabling here, at
        // admission, puts the job's queue wait inside the trace epoch.
        if (J.Req.TraceId && !traceEnabled()) {
          traceEnable();
          TraceSelfEnabled = true;
        }
        Queue.push_back(std::move(J));
        serverMetrics().QueueDepth.set(static_cast<int64_t>(Queue.size()));
      }
    }
    {
      std::lock_guard<std::mutex> SG(StatsLock);
      if (!RejectReason.empty())
        ++Counters.JobsRejected;
      else {
        ++Counters.JobsSubmitted;
        Counters.MaxQueueDepth =
            std::max<uint64_t>(Counters.MaxQueueDepth, Position + 1);
      }
    }
    if (!RejectReason.empty()) {
      serverMetrics().JobsRejected.inc();
      logInfo("server", "submission rejected: " + RejectReason);
      sendError(C, ErrorCode::QueueFull, RejectReason);
      return true;
    }
    QueueCV.notify_all();
    AcceptedPayload A;
    A.JobId = JobId;
    A.QueuePosition = Position;
    sendFrame(C, FrameType::Accepted, encodeAccepted(A));
    // Only now may the executor write frames for this job: the Accepted
    // frame must be the first thing the client reads about it, even when
    // the queue was empty and the job fails immediately.
    {
      std::lock_guard<std::mutex> G(Gate->Lock);
      Gate->Open = true;
    }
    Gate->CV.notify_all();
    return true;
  }
  case FrameType::Stats:
    return sendFrame(C, FrameType::StatsReply, statsJSON());
  case FrameType::Metrics:
    return sendFrame(C, FrameType::MetricsReply, metricsText());
  case FrameType::Ping:
    return sendFrame(C, FrameType::Pong, std::string());
  case FrameType::WorkerHello: {
    // The fleet router's identity check: after the digest-gated handshake
    // it asks "are you the process I spawned?" and verifies the pid in the
    // reply. Any handshaken client may ask; the answer is only about us.
    WorkerHelloPayload WH;
    if (!decodeWorkerHello(F.Payload, WH)) {
      {
        std::lock_guard<std::mutex> G(StatsLock);
        ++Counters.ProtocolErrors;
      }
      serverMetrics().ProtocolErrors.inc();
      sendError(C, ErrorCode::Protocol, "undecodable WorkerHello");
      return false;
    }
    WorkerHelloOkPayload Ok;
#ifndef _WIN32
    Ok.Pid = static_cast<uint64_t>(::getpid());
#endif
    {
      std::lock_guard<std::mutex> G(StatsLock);
      Ok.JobsCompleted = Counters.JobsCompleted;
    }
    Ok.StorePath = Cfg.Engine.CachePath;
    return sendFrame(C, FrameType::WorkerHelloOk, encodeWorkerHelloOk(Ok));
  }
  case FrameType::Shutdown:
    requestStop();
    return true; // connection closes when the server winds down
  default: {
    {
      std::lock_guard<std::mutex> G(StatsLock);
      ++Counters.ProtocolErrors;
    }
    serverMetrics().ProtocolErrors.inc();
    logWarn("server", "closing connection: unexpected frame type " +
                          std::to_string(static_cast<unsigned>(F.Type)));
    sendError(C, ErrorCode::Protocol, "unexpected frame type");
    return false;
  }
  }
}

//===----------------------------------------------------------------------===//
// The executor: one thread, one engine
//===----------------------------------------------------------------------===//

void ValidationServer::checkpoint() {
  // Dirty-gated: a drained daemon serving pure replays must not rewrite an
  // unchanged store once per cadence interval.
  if (Cfg.Engine.CachePath.empty() || !Engine->cacheDirty())
    return;
  auto Start = std::chrono::steady_clock::now();
  TraceSpan Span("checkpoint", "store");
  Engine->saveCache();
  serverMetrics().CheckpointUs.observe(elapsedMicroseconds(Start));
  std::lock_guard<std::mutex> G(StatsLock);
  ++Counters.Checkpoints;
  EngineSnapshot = Engine->cacheStats();
}

void ValidationServer::executorLoop() {
  unsigned SinceCheckpoint = 0;
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> G(QueueLock);
      // Bounded wait: the signal-safe stop path stores flags without a
      // notify, so re-check the predicate every 200ms regardless.
      while (!QueueCV.wait_for(G, std::chrono::milliseconds(200), [this] {
        return DrainAndExit.load() || (!Paused.load() && !Queue.empty());
      }))
        ;
      if (Queue.empty() && DrainAndExit)
        break;
      if (Queue.empty())
        continue;
      // A requested stop drains: Paused is only honored while serving.
      if (Paused && !DrainAndExit)
        continue;
      J = std::move(Queue.front());
      Queue.pop_front();
      serverMetrics().QueueDepth.set(static_cast<int64_t>(Queue.size()));
    }
    // Everything the executor (and the engine pool under it) records from
    // here to JobDone belongs to this job: snapshot the buffer index for
    // the span blob and point the process-global current trace id at the
    // job so every nested span inherits it.
    J.TraceStartIdx = J.Req.TraceId ? traceEventCount() : 0;
    traceSetCurrentTraceId(J.Req.TraceId);
    // Accepted -> executor-start wait, measured at the pop so it covers
    // exactly the time the job sat behind others (or a paused executor).
    uint64_t WaitUs = elapsedMicroseconds(J.Enqueued);
    serverMetrics().QueueWaitUs.observe(WaitUs);
    if (traceEnabled())
      traceCompleteEvent("queue_wait", "server",
                         traceNowUs() > WaitUs ? traceNowUs() - WaitUs : 0,
                         WaitUs, "job " + std::to_string(J.Id));
    {
      std::lock_guard<std::mutex> G(StatsLock);
      Counters.QueueWaitMicroseconds += WaitUs;
    }
    runJob(J);
    traceSetCurrentTraceId(0);
    if (J.Req.TraceId) {
      // Turn self-enabled collection back off once the queue holds no
      // more traced jobs, so an untraced daemon stops accumulating
      // events. An operator's --trace (TraceSelfEnabled false) stays on.
      std::lock_guard<std::mutex> G(QueueLock);
      if (TraceSelfEnabled) {
        bool MoreTraced = false;
        for (const Job &Q : Queue)
          if (Q.Req.TraceId)
            MoreTraced = true;
        if (!MoreTraced) {
          traceDisable();
          TraceSelfEnabled = false;
        }
      }
    }
    ++SinceCheckpoint;
    if (Cfg.CheckpointEveryJobs &&
        SinceCheckpoint >= Cfg.CheckpointEveryJobs) {
      checkpoint();
      SinceCheckpoint = 0;
    }
  }
  // Shutdown checkpoint: whatever the cadence left unsaved survives the
  // restart. The SaveLock inside the store is released with the process,
  // so a clean exit leaks no lock.
  checkpoint();
}

const Module *
ValidationServer::materializeModule(const SubmitModule &M, Context &JobCtx,
                                    std::vector<std::unique_ptr<Module>> &Own,
                                    std::vector<UnsupportedFunctionEntry> *Unsupported,
                                    std::string *Error) {
  if (M.Source == SubmitProfile) {
    std::string Key = M.Name + ":" + std::to_string(M.FnCount);
    auto It = GenCache.find(Key);
    if (It != GenCache.end())
      return It->second.get();
    if (!GenCtx)
      GenCtx = std::make_unique<Context>();
    ModuleSpec Spec;
    Spec.From = ModuleSpec::Source::Profile;
    Spec.Value = M.Name;
    Spec.ProfileFnCount = M.FnCount;
    LoadResult LR = loadModule(*GenCtx, Spec);
    if (!LR) {
      *Error = LR.Error;
      return nullptr;
    }
    const Module *Result = LR.Modules.front().M.get();
    GenCache.emplace(std::move(Key), std::move(LR.Modules.front().M));
    return Result;
  }
  ModuleSpec Spec;
  Spec.From = ModuleSpec::Source::Inline;
  Spec.Value = M.Text;
  Spec.Name = M.Name.empty() ? "module" : M.Name;
  Spec.Format = M.Source == SubmitInlineMini   ? ModuleFormat::MiniIR
                : M.Source == SubmitInlineLLVM ? ModuleFormat::LLVMIR
                                               : ModuleFormat::Auto;
  LoadResult LR = loadModule(JobCtx, Spec);
  if (!LR) {
    // LR.Error leads with the module name and the loader's line/column
    // diagnostic, which is exactly what the Error frame should carry.
    *Error = "load error: " + LR.Error;
    return nullptr;
  }
  if (Unsupported)
    *Unsupported = std::move(LR.Modules.front().Unsupported);
  Own.push_back(std::move(LR.Modules.front().M));
  return Own.back().get();
}

void ValidationServer::runJob(const Job &J) {
  // The submitting thread opens the gate right after the Accepted frame;
  // waiting here (briefly) keeps the response stream well-ordered.
  {
    std::unique_lock<std::mutex> G(J.Gate->Lock);
    J.Gate->CV.wait(G, [&] { return J.Gate->Open; });
  }
  auto Start = std::chrono::steady_clock::now();
  // Not a plain RAII span: a traced job's blob is serialized before the
  // JobDone frame, and the "job" span must already be in the buffer by
  // then — so it is closed by hand right after the suite report streams.
  auto JobSpan = std::make_unique<TraceSpan>("job", "server",
                                             "job " + std::to_string(J.Id));
  Connection &C = *J.Conn;

  // Materialize every module up front so a bad submission fails before any
  // verdict frame is streamed.
  Context JobCtx;
  std::vector<std::unique_ptr<Module>> Own;
  std::vector<const Module *> Mods;
  std::vector<std::vector<UnsupportedFunctionEntry>> Unsupported;
  for (const SubmitModule &M : J.Req.Modules) {
    std::string Error;
    std::vector<UnsupportedFunctionEntry> U;
    const Module *Mod = materializeModule(M, JobCtx, Own, &U, &Error);
    if (!Mod) {
      logWarn("server", "job " + std::to_string(J.Id) + " failed: " + Error +
                            traceLogTag(J.Req.TraceId));
      sendError(C, ErrorCode::BadSubmit, Error);
      std::lock_guard<std::mutex> G(StatsLock);
      ++Counters.JobsErrored;
      return;
    }
    Mods.push_back(Mod);
    Unsupported.push_back(std::move(U));
  }

  const EngineCacheStats Before = Engine->cacheStats();

  // Validate module by module (not one big batch) so each module's report
  // streams as soon as it is ready — a client watching a 12-program suite
  // sees verdicts for the first program while the last is still
  // optimizing. The engine's cross-run verdict cache makes the per-module
  // reports byte-identical to a single-batch run of the same suite.
  SuiteReport SR;
  SR.Pipeline = Pipeline;
  SR.RuleMask = Cfg.Engine.Rules.Mask;
  SR.Stepwise = Cfg.Engine.Granularity == ValidationGranularity::PerPass;
  SR.Threads = Engine->getThreadCount();
  for (size_t Mi = 0; Mi < Mods.size(); ++Mi) {
    EngineRun Run = Engine->run(*Mods[Mi], Pipeline);
    // The ingest frontend's rejections ride on the module report so the
    // streamed and final JSON match batch_validate's byte for byte.
    Run.Report.UnsupportedFunctions = std::move(Unsupported[Mi]);
    for (const FunctionReportEntry &E : Run.Report.Functions) {
      FunctionPayload FP;
      FP.ModuleIndex = static_cast<uint32_t>(Mi);
      FP.ModuleName = Run.Report.ModuleName;
      FP.Json = functionEntryToJSON(E);
      sendFrame(C, FrameType::Function, encodeFunction(FP));
    }
    ModuleReportPayload MP;
    MP.ModuleIndex = static_cast<uint32_t>(Mi);
    MP.Json = reportToJSON(Run.Report);
    sendFrame(C, FrameType::ModuleReport, encodeModuleReport(MP));
    {
      std::lock_guard<std::mutex> G(StatsLock);
      ++Counters.ModulesValidated;
      Counters.FunctionsReported += Run.Report.Functions.size();
    }
    SR.Modules.push_back(std::move(Run.Report));
  }
  SR.WallMicroseconds = elapsedMicroseconds(Start);

  // The authoritative response: exactly the bytes batch_validate's --json
  // would emit for this suite (suiteToJSON omits the nondeterministic
  // timing fields, which is what makes the equality testable).
  sendFrame(C, FrameType::SuiteReport, suiteToJSON(SR));

  // Close the job span now so a traced job's blob carries it.
  JobSpan.reset();

  const EngineCacheStats After = Engine->cacheStats();
  JobDonePayload D;
  D.JobId = J.Id;
  D.Status = SR.validated() == SR.transformed() ? 0 : 2;
  D.Hits = After.Hits - Before.Hits;
  D.WarmHits = After.WarmHits - Before.WarmHits;
  D.Misses = After.Misses - Before.Misses;
  D.SkippedIdentical = After.SkippedIdentical - Before.SkippedIdentical;
  D.TriageHits = After.TriageHits - Before.TriageHits;
  D.TriageWarmHits = After.TriageWarmHits - Before.TriageWarmHits;
  D.TriageMisses = After.TriageMisses - Before.TriageMisses;
  D.WallMicroseconds = SR.WallMicroseconds;
  if (J.Req.TraceId) {
    // Ship this job's spans home: the router (or whoever traced the
    // submission) merges them into its own buffer, rebased onto its
    // epoch, so one fleet job renders as one flame across pids.
    D.TraceId = J.Req.TraceId;
    D.TraceBlob = traceSerializeEvents(J.TraceStartIdx);
  }

  // Counters first, then the frame: a client holding JobDone must see its
  // job reflected in /stats.
  {
    std::lock_guard<std::mutex> G(StatsLock);
    ++Counters.JobsCompleted;
    Counters.JobMicroseconds += SR.WallMicroseconds;
    EngineSnapshot = After;
  }
  serverMetrics().JobsCompleted.inc();
  serverMetrics().JobUs.observe(SR.WallMicroseconds);
  if (Cfg.SlowJobMicroseconds && SR.WallMicroseconds > Cfg.SlowJobMicroseconds)
    logWarn("server",
            "slow job " + std::to_string(J.Id) + ": " +
                std::to_string(SR.WallMicroseconds / 1000) + " ms over " +
                std::to_string(SR.Modules.size()) + " module(s), threshold " +
                std::to_string(Cfg.SlowJobMicroseconds / 1000) + " ms" +
                traceLogTag(J.Req.TraceId));
  sendFrame(C, FrameType::JobDone, encodeJobDone(D));
}
