//===- ServerClient.cpp - Validation service client library -------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "server/ServerClient.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace llvmmd;

namespace {

/// The errno classes worth retrying: the listener is mid-restart
/// (ECONNREFUSED, and ENOENT for a unix socket file not bound yet) or hung
/// up while the connect raced its teardown (ECONNRESET).
bool isRetryableConnectErrno(int Err) {
  return Err == ECONNREFUSED || Err == ECONNRESET || Err == ENOENT;
}

} // namespace

unsigned ServerClient::retryDelayMs(const RetryPolicy &P, unsigned Attempt) {
  // Saturating shift: past 31 doublings the schedule is pinned to the cap
  // anyway, and BaseDelayMs << 32 would be undefined.
  if (Attempt >= 31)
    return P.MaxDelayMs;
  unsigned long long D =
      static_cast<unsigned long long>(P.BaseDelayMs) << Attempt;
  return D >= P.MaxDelayMs ? P.MaxDelayMs : static_cast<unsigned>(D);
}

ServerClient::~ServerClient() { close(); }

void ServerClient::close() {
#ifndef _WIN32
  if (Fd >= 0)
    ::close(Fd);
#endif
  Fd = -1;
}

bool ServerClient::connectUnix(const std::string &Path, std::string *Error) {
#ifndef _WIN32
  close();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "unix socket path too long: " + Path;
    return false;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  for (unsigned Attempt = 0;; ++Attempt) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd >= 0 && ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                             sizeof(Addr)) == 0)
      return true;
    int Err = errno;
    close();
    // ENOENT: the socket file is not bound yet — exactly what a worker
    // restarting under us looks like before its first listen().
    if (Attempt >= Retry.Retries || !isRetryableConnectErrno(Err)) {
      if (Error)
        *Error = "cannot connect to '" + Path + "'";
      return false;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(retryDelayMs(Retry, Attempt)));
  }
#else
  (void)Path;
  if (Error)
    *Error = "client sockets are POSIX-only";
  return false;
#endif
}

bool ServerClient::connectTcp(const std::string &Host, uint16_t Port,
                              std::string *Error) {
#ifndef _WIN32
  close();
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "bad IPv4 address '" + Host + "'";
    return false;
  }
  for (unsigned Attempt = 0;; ++Attempt) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd >= 0 && ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                             sizeof(Addr)) == 0)
      return true;
    int Err = errno;
    close();
    if (Attempt >= Retry.Retries || !isRetryableConnectErrno(Err)) {
      if (Error)
        *Error = "cannot connect to " + Host + ":" + std::to_string(Port);
      return false;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(retryDelayMs(Retry, Attempt)));
  }
#else
  (void)Host;
  (void)Port;
  if (Error)
    *Error = "client sockets are POSIX-only";
  return false;
#endif
}

bool ServerClient::sendRaw(FrameType Type, const std::string &Payload) {
  return Fd >= 0 && writeFrame(Fd, Type, Payload);
}

bool ServerClient::readExpect(FrameType Want, Frame &F, std::string *Error) {
  ReadStatus RS = readFrame(Fd, F, MaxFrameBytes);
  if (RS != ReadStatus::Ok) {
    if (Error)
      *Error = RS == ReadStatus::Eof ? "server closed the connection"
                                     : "connection error";
    return false;
  }
  if (F.Type == Want)
    return true;
  if (F.Type == FrameType::Error) {
    ErrorPayload E;
    if (Error)
      *Error = decodeError(F.Payload, E) ? E.Message : "undecodable error";
    return false;
  }
  if (Error)
    *Error = "unexpected frame from server";
  return false;
}

bool ServerClient::handshake(uint64_t ConfigDigest, HelloOkPayload *Info,
                             std::string *Error) {
  HelloPayload H;
  H.ConfigDigest = ConfigDigest;
  if (!sendRaw(FrameType::Hello, encodeHello(H))) {
    if (Error)
      *Error = "cannot send Hello";
    return false;
  }
  Frame F;
  if (!readExpect(FrameType::HelloOk, F, Error))
    return false;
  HelloOkPayload Ok;
  if (!decodeHelloOk(F.Payload, Ok)) {
    if (Error)
      *Error = "undecodable HelloOk";
    return false;
  }
  if (Info)
    *Info = Ok;
  return true;
}

bool ServerClient::submit(const SubmitPayload &Req, AcceptedPayload *Accepted,
                          std::string *Error, bool *Deduplicated) {
  if (Deduplicated)
    *Deduplicated = false;
  if (!sendRaw(FrameType::Submit, encodeSubmit(Req))) {
    if (Error)
      *Error = "cannot send Submit";
    return false;
  }
  Frame F;
  ReadStatus RS = readFrame(Fd, F, MaxFrameBytes);
  if (RS != ReadStatus::Ok) {
    if (Error)
      *Error = RS == ReadStatus::Eof ? "server closed the connection"
                                     : "connection error";
    return false;
  }
  if (F.Type == FrameType::Accepted) {
    AcceptedPayload A;
    if (!decodeAccepted(F.Payload, A)) {
      if (Error)
        *Error = "undecodable Accepted";
      return false;
    }
    if (Accepted)
      *Accepted = A;
    return true;
  }
  if (F.Type == FrameType::JobId) {
    // A fleet router folded this submission onto an already-running
    // identical job; the stream that follows is that job's.
    JobIdPayload J;
    if (!decodeJobId(F.Payload, J)) {
      if (Error)
        *Error = "undecodable JobId";
      return false;
    }
    if (Accepted) {
      Accepted->JobId = J.JobId;
      Accepted->QueuePosition = 0;
    }
    if (Deduplicated)
      *Deduplicated = true;
    return true;
  }
  if (F.Type == FrameType::Error) {
    ErrorPayload E;
    if (Error)
      *Error = decodeError(F.Payload, E) ? E.Message : "undecodable error";
    return false;
  }
  if (Error)
    *Error = "unexpected frame from server";
  return false;
}

bool ServerClient::subscribe(uint64_t JobId, JobIdPayload *Info,
                             std::string *Error) {
  SubscribePayload S;
  S.JobId = JobId;
  if (!sendRaw(FrameType::Subscribe, encodeSubscribe(S))) {
    if (Error)
      *Error = "cannot send Subscribe";
    return false;
  }
  Frame F;
  if (!readExpect(FrameType::JobId, F, Error))
    return false;
  JobIdPayload J;
  if (!decodeJobId(F.Payload, J)) {
    if (Error)
      *Error = "undecodable JobId";
    return false;
  }
  if (Info)
    *Info = J;
  return true;
}

bool ServerClient::workerHello(const WorkerHelloPayload &Req,
                               WorkerHelloOkPayload *Info,
                               std::string *Error) {
  if (!sendRaw(FrameType::WorkerHello, encodeWorkerHello(Req))) {
    if (Error)
      *Error = "cannot send WorkerHello";
    return false;
  }
  Frame F;
  if (!readExpect(FrameType::WorkerHelloOk, F, Error))
    return false;
  WorkerHelloOkPayload Ok;
  if (!decodeWorkerHelloOk(F.Payload, Ok)) {
    if (Error)
      *Error = "undecodable WorkerHelloOk";
    return false;
  }
  if (Info)
    *Info = Ok;
  return true;
}

bool ServerClient::nextEvent(Event &E, std::string *Error) {
  Frame F;
  ReadStatus RS = readFrame(Fd, F, MaxFrameBytes);
  if (RS != ReadStatus::Ok) {
    if (Error)
      *Error = RS == ReadStatus::Eof ? "server closed the connection"
                                     : "connection error";
    return false;
  }
  switch (F.Type) {
  case FrameType::Function:
    E.K = Event::Kind::Function;
    if (!decodeFunction(F.Payload, E.Function))
      break;
    return true;
  case FrameType::ModuleReport:
    E.K = Event::Kind::ModuleReport;
    if (!decodeModuleReport(F.Payload, E.Module))
      break;
    return true;
  case FrameType::SuiteReport:
    E.K = Event::Kind::SuiteReport;
    E.SuiteJson = std::move(F.Payload);
    return true;
  case FrameType::JobDone:
    E.K = Event::Kind::JobDone;
    if (!decodeJobDone(F.Payload, E.Done))
      break;
    return true;
  case FrameType::Error:
    E.K = Event::Kind::Error;
    if (!decodeError(F.Payload, E.Error))
      break;
    return true;
  default:
    break;
  }
  if (Error)
    *Error = "undecodable or unexpected frame from server";
  return false;
}

bool ServerClient::stats(std::string *Json, std::string *Error) {
  if (!sendRaw(FrameType::Stats, std::string())) {
    if (Error)
      *Error = "cannot send Stats";
    return false;
  }
  Frame F;
  if (!readExpect(FrameType::StatsReply, F, Error))
    return false;
  if (Json)
    *Json = std::move(F.Payload);
  return true;
}

bool ServerClient::metrics(std::string *Text, std::string *Error) {
  if (!sendRaw(FrameType::Metrics, std::string())) {
    if (Error)
      *Error = "cannot send Metrics";
    return false;
  }
  Frame F;
  if (!readExpect(FrameType::MetricsReply, F, Error))
    return false;
  if (Text)
    *Text = std::move(F.Payload);
  return true;
}

bool ServerClient::ping(std::string *Error) {
  if (!sendRaw(FrameType::Ping, std::string())) {
    if (Error)
      *Error = "cannot send Ping";
    return false;
  }
  Frame F;
  return readExpect(FrameType::Pong, F, Error);
}

bool ServerClient::requestShutdown() {
  return sendRaw(FrameType::Shutdown, std::string());
}
