//===- ValueGraph.h - Shared, hash-consed value graph -----------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared value graph of the paper (§2-3): a single arena of
/// hash-consed nodes representing *both* the original and the optimized
/// function, so that equal subcomputations are literally the same node and
/// the best-case equality check is O(1).
///
/// Acyclic nodes are interned on construction. Cycles are broken by μ
/// nodes, which are created unique and merged later by the sharing
/// maximization pass (§5.4): either the simple parallel-unification
/// algorithm, a Hopcroft-style partition refinement, or the paper's default
/// combination (simple first, partitioning as fallback).
///
/// Merging is a union-find over node ids; rewrite rules replace a node by
/// merging it into its replacement.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_VG_VALUEGRAPH_H
#define LLVMMD_VG_VALUEGRAPH_H

#include "ir/Function.h"
#include "ir/Type.h"
#include "support/Arena.h"

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace llvmmd {

using NodeId = uint32_t;
inline constexpr NodeId InvalidNode = ~NodeId(0);

enum class NodeKind : uint8_t {
  ConstInt,   // IntVal
  ConstFloat, // FloatVal
  ConstNull,
  Undef,
  Global,     // Str = name; IntVal = 1 if constant-qualified
  Param,      // IntVal = index (shared between the two functions!)
  InitialMem, // the memory state on function entry (shared)
  Op,         // Op + Pred payloads; pure operators incl. GEP
  Gamma,      // gated φ: operands [c1,v1, c2,v2, ...]
  Mu,         // loop value: operands [init, next]; NOT hash-consed
  Eta,        // loop exit: operands [stayCond, value]
  Alloc,      // operands [count, memIn]; IntVal = element store size
  AllocMem,   // operands [alloc]: memory state after the allocation
  Load,       // operands [ptr, mem]
  Store,      // operands [value, ptr, mem] -> memory
  Call,       // Str = callee; IntVal = MemoryEffect; operands [args..., memIn]
  CallMem,    // operands [call]: memory state after the call
  Ret,        // operands [mem] or [value, mem]: the function's state pointer
};

const char *getNodeKindName(NodeKind K);

struct Node {
  NodeKind Kind;
  Opcode Op = Opcode::Add; // valid when Kind == Op
  uint8_t Pred = 0;        // icmp/fcmp predicate for Kind == Op
  Type *Ty = nullptr;      // result type (null for memory-typed nodes)
  int64_t IntVal = 0;
  double FloatVal = 0;
  std::string Str;
  std::vector<NodeId> Ops;
};

/// Sharing maximization strategy (§5.4 of the paper).
enum class SharingStrategy : uint8_t {
  /// Bottom-up congruence pass + pairwise μ unification.
  Simple,
  /// Hopcroft-style partition refinement (bisimulation classes).
  Partition,
  /// Simple first; partitioning as a fallback. The paper reports this
  /// performs slightly better than either alone.
  Combined,
};

class ValueGraph {
public:
  //===------------------------------------------------------------------===//
  // Node construction (hash-consed unless noted)
  //===------------------------------------------------------------------===//

  NodeId getConstInt(Type *Ty, int64_t V);
  NodeId getConstFloat(Type *Ty, double V);
  NodeId getConstBool(Type *BoolTy, bool B) {
    return getConstInt(BoolTy, B ? 1 : 0);
  }
  NodeId getNull(Type *PtrTy);
  NodeId getUndef(Type *Ty);
  NodeId getGlobal(const std::string &Name, bool IsConstant, Type *PtrTy);
  NodeId getParam(unsigned Index, Type *Ty);
  NodeId getInitialMem();

  NodeId getOp(Opcode Op, Type *Ty, std::vector<NodeId> Operands,
               uint8_t Pred = 0, int64_t Extra = 0);

  /// Gamma operands are (cond, value) pairs; they are canonically sorted.
  NodeId getGamma(Type *Ty, std::vector<std::pair<NodeId, NodeId>> Branches);

  NodeId getEta(Type *Ty, NodeId StayCond, NodeId Value);

  /// μ nodes are unique (cycle breakers); operands set after body
  /// construction via setMuOperands.
  NodeId makeMu(Type *Ty);
  void setMuOperands(NodeId Mu, NodeId Init, NodeId Next);

  NodeId getAlloc(NodeId Count, NodeId MemIn, unsigned ElemSize);
  NodeId getAllocMem(NodeId Alloc);
  NodeId getLoad(Type *Ty, NodeId Ptr, NodeId Mem);
  NodeId getStore(NodeId Value, NodeId Ptr, NodeId Mem);
  NodeId getCall(const std::string &Callee, MemoryEffect Effect, Type *RetTy,
                 std::vector<NodeId> ArgsAndMem);
  NodeId getCallMem(NodeId Call);
  NodeId getRet(NodeId ValueOrInvalid, NodeId Mem);

  //===------------------------------------------------------------------===//
  // Union-find and access
  //===------------------------------------------------------------------===//

  NodeId find(NodeId Id) const;
  /// Merges \p From into \p Into: find(From) == find(Into) == find-of-Into.
  /// Rewrite rules call this with Into = the canonical replacement.
  void mergeInto(NodeId From, NodeId Into);

  const Node &node(NodeId Id) const { return Nodes[find(Id)]; }
  size_t size() const { return Nodes.size(); }
  /// Number of live (representative) nodes.
  size_t countRoots() const;

  NodeId operand(NodeId Id, unsigned I) const {
    return find(node(Id).Ops[I]);
  }

  //===------------------------------------------------------------------===//
  // Sharing maximization
  //===------------------------------------------------------------------===//

  /// Runs one round of sharing maximization; returns the number of merges.
  unsigned maximizeSharing(SharingStrategy Strategy);

  /// Canonically re-sorts every Gamma's branches (by current roots) and
  /// commutative operators' operands. Returns number of nodes changed.
  unsigned canonicalizeOrders();

  //===------------------------------------------------------------------===//
  // Cone queries used by rewrite rules
  //===------------------------------------------------------------------===//

  /// True if any μ node is reachable from \p Id (over current roots).
  bool coneContainsMu(NodeId Id) const;

  /// True if the Alloc node \p Alloc is non-escaping in this graph: it is
  /// only used as a load/store/GEP address or for its AllocMem projection.
  bool isNonEscapingAlloc(NodeId Alloc) const;

  /// Structural may-alias on pointer-valued nodes (the validator-side
  /// mirror of AliasAnalysis): NoAlias for distinct Allocs, distinct
  /// Globals, non-escaping Alloc vs anything else, same base with disjoint
  /// constant GEP offsets. Returns 0 = NoAlias, 1 = MayAlias, 2 = Must.
  int aliasPointers(NodeId P, NodeId Q, unsigned SizeP, unsigned SizeQ) const;

  /// Rewrite statistics (incremented by mergeInto when flagged).
  unsigned getMergeCount() const { return MergeCount; }

  /// Renders the live cone of \p Roots as readable text (one node per
  /// line), for debugging and for the graph-dump example.
  std::string dump(const std::vector<NodeId> &Roots) const;

  /// Renders the live cone of \p Roots as a GraphViz digraph, in the style
  /// of the paper's figures: γ/μ/η nodes labeled, memory edges dashed.
  std::string dumpDot(const std::vector<NodeId> &Roots) const;

private:
  NodeId intern(Node N);

  /// Structural hash of \p N over its (already canonicalized) operand list;
  /// the hash-cons key. Collisions are resolved by structural equality.
  uint64_t hashNode(const Node &N) const;
  /// Hash of the head payload only (kind, op, pred, type, scalars, arity) —
  /// the operand *contents* are excluded. Bucket key for the partition
  /// refinement pass's initial partition.
  uint64_t hashNodeHead(const Node &N) const;
  /// Field-by-field structural equality against an interned node.
  static bool nodeEquals(const Node &A, const Node &B);

  /// Parallel structural unification under cycle assumptions (§5.4's
  /// "simple unification algorithm").
  bool unify(NodeId X, NodeId Y, std::set<std::pair<NodeId, NodeId>> &Assumed,
             unsigned Depth) const;

  unsigned congruencePass();
  unsigned muUnificationPass();
  unsigned partitionRefinementPass();

  /// Arena-backed, pointer-stable node table. Interning a node must never
  /// invalidate references to existing nodes — the normalizer's rewrite
  /// rules hold `const Node &` to the node being rewritten while creating
  /// its replacement through getOp/getConstInt, and node() hands such
  /// references out across the codebase. Nodes are bump-allocated in
  /// creation order (normalization walks touch consecutive memory) and
  /// freed with the graph in a handful of slab releases.
  class NodeTable {
  public:
    Node &operator[](size_t I) { return *Items[I]; }
    const Node &operator[](size_t I) const { return *Items[I]; }
    size_t size() const { return Items.size(); }
    void push_back(Node N) { Items.push_back(A.create<Node>(std::move(N))); }

  private:
    Arena A{16 * 1024};
    std::vector<Node *> Items;
  };
  NodeTable Nodes;
  mutable std::vector<NodeId> Parent;
  /// Structural hash -> candidate ids (collision bucket). Keys are frozen at
  /// intern time, like the interned nodes' operand lists; later union-find
  /// merges can make equal-shaped nodes miss, which the sharing-maximization
  /// congruence pass cleans up.
  std::unordered_map<uint64_t, std::vector<NodeId>> HashCons;
  unsigned MergeCount = 0;
};

} // namespace llvmmd

#endif // LLVMMD_VG_VALUEGRAPH_H
