//===- ValueGraph.cpp - Shared, hash-consed value graph ----------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "vg/ValueGraph.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

using namespace llvmmd;

const char *llvmmd::getNodeKindName(NodeKind K) {
  switch (K) {
  case NodeKind::ConstInt:
    return "const";
  case NodeKind::ConstFloat:
    return "fconst";
  case NodeKind::ConstNull:
    return "null";
  case NodeKind::Undef:
    return "undef";
  case NodeKind::Global:
    return "global";
  case NodeKind::Param:
    return "param";
  case NodeKind::InitialMem:
    return "mem0";
  case NodeKind::Op:
    return "op";
  case NodeKind::Gamma:
    return "gamma";
  case NodeKind::Mu:
    return "mu";
  case NodeKind::Eta:
    return "eta";
  case NodeKind::Alloc:
    return "alloc";
  case NodeKind::AllocMem:
    return "allocmem";
  case NodeKind::Load:
    return "load";
  case NodeKind::Store:
    return "store";
  case NodeKind::Call:
    return "call";
  case NodeKind::CallMem:
    return "callmem";
  case NodeKind::Ret:
    return "ret";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Union-find
//===----------------------------------------------------------------------===//

NodeId ValueGraph::find(NodeId Id) const {
  assert(Id < Parent.size() && "node id out of range");
  NodeId Root = Id;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  // Path compression.
  while (Parent[Id] != Root) {
    NodeId Next = Parent[Id];
    Parent[Id] = Root;
    Id = Next;
  }
  return Root;
}

void ValueGraph::mergeInto(NodeId From, NodeId Into) {
  NodeId A = find(From), B = find(Into);
  if (A == B)
    return;
  Parent[A] = B;
  ++MergeCount;
}

size_t ValueGraph::countRoots() const {
  size_t N = 0;
  for (NodeId I = 0; I < Nodes.size(); ++I)
    if (find(I) == I)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Hash-consing
//===----------------------------------------------------------------------===//

namespace {

/// Equality of every node field except the operand list. Floats compare by
/// bit pattern (the hash-cons identity), so -0.0 and NaN payloads behave
/// exactly like the former serialized-string key.
bool scalarFieldsEqual(const Node &A, const Node &B) {
  uint64_t ABits, BBits;
  std::memcpy(&ABits, &A.FloatVal, sizeof(ABits));
  std::memcpy(&BBits, &B.FloatVal, sizeof(BBits));
  return A.Kind == B.Kind && A.Op == B.Op && A.Pred == B.Pred &&
         A.Ty == B.Ty && A.IntVal == B.IntVal && ABits == BBits &&
         A.Str == B.Str;
}

} // namespace

uint64_t ValueGraph::hashNodeHead(const Node &N) const {
  uint64_t FloatBits;
  std::memcpy(&FloatBits, &N.FloatVal, sizeof(FloatBits));
  uint64_t H = hashCombine(static_cast<uint64_t>(N.Kind),
                           static_cast<uint64_t>(N.Op));
  H = hashCombine(H, N.Pred);
  // Types are interned in the Context, so their shape identifies them.
  H = hashCombine(H, hashTypeShape(N.Ty));
  H = hashCombine(H, static_cast<uint64_t>(N.IntVal));
  H = hashCombine(H, FloatBits);
  H = hashCombine(H, hashString(N.Str));
  H = hashCombine(H, N.Ops.size());
  return H;
}

uint64_t ValueGraph::hashNode(const Node &N) const {
  uint64_t H = hashNodeHead(N);
  for (NodeId Op : N.Ops)
    H = hashCombine(H, Op);
  return H;
}

bool ValueGraph::nodeEquals(const Node &A, const Node &B) {
  return scalarFieldsEqual(A, B) && A.Ops == B.Ops;
}

NodeId ValueGraph::intern(Node N) {
  // Canonicalize operand references before keying.
  for (NodeId &Op : N.Ops)
    Op = find(Op);
  std::vector<NodeId> &Bucket = HashCons[hashNode(N)];
  for (NodeId Candidate : Bucket)
    if (nodeEquals(Nodes[Candidate], N))
      return find(Candidate);
  NodeId Id = static_cast<NodeId>(Nodes.size());
  Nodes.push_back(std::move(N));
  Parent.push_back(Id);
  Bucket.push_back(Id);
  return Id;
}

NodeId ValueGraph::getConstInt(Type *Ty, int64_t V) {
  Node N;
  N.Kind = NodeKind::ConstInt;
  N.Ty = Ty;
  N.IntVal = signExtend(V, Ty->getBitWidth());
  return intern(std::move(N));
}

NodeId ValueGraph::getConstFloat(Type *Ty, double V) {
  Node N;
  N.Kind = NodeKind::ConstFloat;
  N.Ty = Ty;
  N.FloatVal = V;
  return intern(std::move(N));
}

NodeId ValueGraph::getNull(Type *PtrTy) {
  Node N;
  N.Kind = NodeKind::ConstNull;
  N.Ty = PtrTy;
  return intern(std::move(N));
}

NodeId ValueGraph::getUndef(Type *Ty) {
  Node N;
  N.Kind = NodeKind::Undef;
  N.Ty = Ty;
  return intern(std::move(N));
}

NodeId ValueGraph::getGlobal(const std::string &Name, bool IsConstant,
                             Type *PtrTy) {
  Node N;
  N.Kind = NodeKind::Global;
  N.Ty = PtrTy;
  N.Str = Name;
  N.IntVal = IsConstant ? 1 : 0;
  return intern(std::move(N));
}

NodeId ValueGraph::getParam(unsigned Index, Type *Ty) {
  Node N;
  N.Kind = NodeKind::Param;
  N.Ty = Ty;
  N.IntVal = Index;
  return intern(std::move(N));
}

NodeId ValueGraph::getInitialMem() {
  Node N;
  N.Kind = NodeKind::InitialMem;
  return intern(std::move(N));
}

NodeId ValueGraph::getOp(Opcode Op, Type *Ty, std::vector<NodeId> Operands,
                         uint8_t Pred, int64_t Extra) {
  Node N;
  N.Kind = NodeKind::Op;
  N.Op = Op;
  N.Pred = Pred;
  N.Ty = Ty;
  N.IntVal = Extra;
  N.Ops = std::move(Operands);
  if (isCommutativeOp(Op) && N.Ops.size() == 2) {
    NodeId A = find(N.Ops[0]), B = find(N.Ops[1]);
    if (B < A)
      std::swap(N.Ops[0], N.Ops[1]);
  }
  return intern(std::move(N));
}

NodeId ValueGraph::getGamma(Type *Ty,
                            std::vector<std::pair<NodeId, NodeId>> Branches) {
  assert(!Branches.empty() && "gamma with no branches");
  for (auto &[C, V] : Branches) {
    C = find(C);
    V = find(V);
  }
  std::sort(Branches.begin(), Branches.end());
  Node N;
  N.Kind = NodeKind::Gamma;
  N.Ty = Ty;
  for (auto &[C, V] : Branches) {
    N.Ops.push_back(C);
    N.Ops.push_back(V);
  }
  return intern(std::move(N));
}

NodeId ValueGraph::getEta(Type *Ty, NodeId StayCond, NodeId Value) {
  Node N;
  N.Kind = NodeKind::Eta;
  N.Ty = Ty;
  N.Ops = {StayCond, Value};
  return intern(std::move(N));
}

NodeId ValueGraph::makeMu(Type *Ty) {
  Node N;
  N.Kind = NodeKind::Mu;
  N.Ty = Ty;
  N.Ops = {InvalidNode, InvalidNode};
  NodeId Id = static_cast<NodeId>(Nodes.size());
  Nodes.push_back(std::move(N));
  Parent.push_back(Id);
  return Id; // deliberately not hash-consed
}

void ValueGraph::setMuOperands(NodeId Mu, NodeId Init, NodeId Next) {
  Node &N = Nodes[find(Mu)];
  assert(N.Kind == NodeKind::Mu && "not a mu node");
  N.Ops[0] = find(Init);
  N.Ops[1] = find(Next);
}

NodeId ValueGraph::getAlloc(NodeId Count, NodeId MemIn, unsigned ElemSize) {
  Node N;
  N.Kind = NodeKind::Alloc;
  N.IntVal = ElemSize;
  N.Ops = {Count, MemIn};
  return intern(std::move(N));
}

NodeId ValueGraph::getAllocMem(NodeId Alloc) {
  Node N;
  N.Kind = NodeKind::AllocMem;
  N.Ops = {Alloc};
  return intern(std::move(N));
}

NodeId ValueGraph::getLoad(Type *Ty, NodeId Ptr, NodeId Mem) {
  Node N;
  N.Kind = NodeKind::Load;
  N.Ty = Ty;
  N.Ops = {Ptr, Mem};
  return intern(std::move(N));
}

NodeId ValueGraph::getStore(NodeId Value, NodeId Ptr, NodeId Mem) {
  Node N;
  N.Kind = NodeKind::Store;
  N.Ops = {Value, Ptr, Mem};
  return intern(std::move(N));
}

NodeId ValueGraph::getCall(const std::string &Callee, MemoryEffect Effect,
                           Type *RetTy, std::vector<NodeId> ArgsAndMem) {
  Node N;
  N.Kind = NodeKind::Call;
  N.Ty = RetTy;
  N.Str = Callee;
  N.IntVal = static_cast<int64_t>(Effect);
  N.Ops = std::move(ArgsAndMem);
  return intern(std::move(N));
}

NodeId ValueGraph::getCallMem(NodeId Call) {
  Node N;
  N.Kind = NodeKind::CallMem;
  N.Ops = {Call};
  return intern(std::move(N));
}

NodeId ValueGraph::getRet(NodeId ValueOrInvalid, NodeId Mem) {
  Node N;
  N.Kind = NodeKind::Ret;
  if (ValueOrInvalid != InvalidNode)
    N.Ops = {ValueOrInvalid, Mem};
  else
    N.Ops = {Mem};
  return intern(std::move(N));
}

//===----------------------------------------------------------------------===//
// Sharing maximization
//===----------------------------------------------------------------------===//

unsigned ValueGraph::canonicalizeOrders() {
  unsigned Changed = 0;
  for (NodeId I = 0; I < Nodes.size(); ++I) {
    if (find(I) != I)
      continue;
    Node &N = Nodes[I];
    if (N.Kind == NodeKind::Gamma) {
      std::vector<std::pair<NodeId, NodeId>> Branches;
      for (unsigned K = 0; K + 1 < N.Ops.size(); K += 2)
        Branches.emplace_back(find(N.Ops[K]), find(N.Ops[K + 1]));
      std::sort(Branches.begin(), Branches.end());
      std::vector<NodeId> NewOps;
      for (auto &[C, V] : Branches) {
        NewOps.push_back(C);
        NewOps.push_back(V);
      }
      if (NewOps != N.Ops) {
        N.Ops = std::move(NewOps);
        ++Changed;
      }
      continue;
    }
    if (N.Kind == NodeKind::Op && isCommutativeOp(N.Op) && N.Ops.size() == 2) {
      NodeId A = find(N.Ops[0]), B = find(N.Ops[1]);
      if (B < A)
        std::swap(A, B);
      if (A != N.Ops[0] || B != N.Ops[1]) {
        N.Ops = {A, B};
        ++Changed;
      }
    }
  }
  return Changed;
}

unsigned ValueGraph::congruencePass() {
  // Keys must be recomputed over *current* union-find roots every iteration,
  // unlike the frozen hash-cons table; hence the local hash buckets with
  // root-canonicalized comparison.
  auto CanonicalEquals = [this](const Node &A, const Node &B) {
    if (!scalarFieldsEqual(A, B) || A.Ops.size() != B.Ops.size())
      return false;
    for (size_t I = 0, E = A.Ops.size(); I != E; ++I)
      if (find(A.Ops[I]) != find(B.Ops[I]))
        return false;
    return true;
  };

  unsigned Merges = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    canonicalizeOrders();
    std::unordered_map<uint64_t, std::vector<NodeId>> Tab;
    for (NodeId I = 0; I < Nodes.size(); ++I) {
      if (find(I) != I)
        continue;
      if (Nodes[I].Kind == NodeKind::Mu)
        continue; // cycles handled by unification/partitioning
      Node Probe = Nodes[I];
      for (NodeId &Op : Probe.Ops)
        Op = find(Op);
      std::vector<NodeId> &Bucket = Tab[hashNode(Probe)];
      bool Merged = false;
      for (NodeId Candidate : Bucket) {
        if (CanonicalEquals(Nodes[Candidate], Probe)) {
          mergeInto(I, Candidate); // keep the earlier (smaller) id
          ++Merges;
          Changed = true;
          Merged = true;
          break;
        }
      }
      if (!Merged)
        Bucket.push_back(I);
    }
  }
  return Merges;
}

unsigned ValueGraph::muUnificationPass() {
  // Gather μ roots in deterministic order.
  std::vector<NodeId> Mus;
  for (NodeId I = 0; I < Nodes.size(); ++I)
    if (find(I) == I && Nodes[I].Kind == NodeKind::Mu)
      Mus.push_back(I);

  unsigned Merges = 0;
  for (unsigned A = 0; A < Mus.size(); ++A) {
    for (unsigned B = A + 1; B < Mus.size(); ++B) {
      NodeId X = find(Mus[A]), Y = find(Mus[B]);
      if (X == Y)
        continue;
      const Node &NX = Nodes[X], &NY = Nodes[Y];
      if (NX.Ty != NY.Ty)
        continue;
      if (NX.Ops[0] == InvalidNode || NY.Ops[0] == InvalidNode)
        continue;
      if (find(NX.Ops[0]) != find(NY.Ops[0]))
        continue; // same initial value required
      // Parallel unification under the assumption X == Y.
      std::set<std::pair<NodeId, NodeId>> Assumed;
      if (unify(X, Y, Assumed, 0)) {
        for (auto &[P, Q] : Assumed)
          mergeInto(std::max(P, Q), std::min(P, Q));
        Merges += Assumed.size();
      }
    }
  }
  return Merges;
}

bool ValueGraph::unify(NodeId X, NodeId Y,
                       std::set<std::pair<NodeId, NodeId>> &Assumed,
                       unsigned Depth) const {
  if (Depth > 4096)
    return false;
  X = find(X);
  Y = find(Y);
  if (X == Y)
    return true;
  auto Pair = std::minmax(X, Y);
  if (Assumed.count({Pair.first, Pair.second}))
    return true;
  const Node &NX = Nodes[X], &NY = Nodes[Y];
  if (NX.Kind != NY.Kind || NX.Op != NY.Op || NX.Pred != NY.Pred ||
      NX.Ty != NY.Ty || NX.IntVal != NY.IntVal || NX.Str != NY.Str ||
      NX.Ops.size() != NY.Ops.size())
    return false;
  uint64_t BX, BY;
  std::memcpy(&BX, &NX.FloatVal, sizeof(BX));
  std::memcpy(&BY, &NY.FloatVal, sizeof(BY));
  if (BX != BY)
    return false;
  Assumed.insert({Pair.first, Pair.second});
  // Commutative operators need the prolog-style backtracking the paper
  // mentions (§5.4): the two orderings may differ before merging.
  if (NX.Kind == NodeKind::Op && isCommutativeOp(NX.Op) &&
      NX.Ops.size() == 2) {
    {
      std::set<std::pair<NodeId, NodeId>> Copy = Assumed;
      if (unify(NX.Ops[0], NY.Ops[0], Copy, Depth + 1) &&
          unify(NX.Ops[1], NY.Ops[1], Copy, Depth + 1)) {
        Assumed = std::move(Copy);
        return true;
      }
    }
    std::set<std::pair<NodeId, NodeId>> Copy = Assumed;
    if (unify(NX.Ops[0], NY.Ops[1], Copy, Depth + 1) &&
        unify(NX.Ops[1], NY.Ops[0], Copy, Depth + 1)) {
      Assumed = std::move(Copy);
      return true;
    }
    return false;
  }
  for (unsigned I = 0, E = NX.Ops.size(); I != E; ++I) {
    if (NX.Ops[I] == InvalidNode || NY.Ops[I] == InvalidNode)
      return NX.Ops[I] == NY.Ops[I];
    if (!unify(NX.Ops[I], NY.Ops[I], Assumed, Depth + 1))
      return false;
  }
  return true;
}

unsigned ValueGraph::partitionRefinementPass() {
  std::vector<NodeId> Roots;
  for (NodeId I = 0; I < Nodes.size(); ++I)
    if (find(I) == I)
      Roots.push_back(I);
  canonicalizeOrders();

  // Initial partition: head payload (kind, op, pred, type, scalars, arity),
  // bucketed by the same structural hash the hash-cons table and the
  // congruence pass use; collisions resolve by field equality. Class ids are
  // assigned first-seen in root (ascending NodeId) order, so the partition
  // is deterministic.
  std::vector<unsigned> Class(Nodes.size(), 0);
  unsigned NumClasses = 0;
  {
    std::unordered_map<uint64_t, std::vector<NodeId>> Heads;
    for (NodeId I : Roots) {
      const Node &N = Nodes[I];
      std::vector<NodeId> &Bucket = Heads[hashNodeHead(N)];
      bool Found = false;
      for (NodeId Rep : Bucket) {
        const Node &R = Nodes[Rep];
        if (scalarFieldsEqual(R, N) && R.Ops.size() == N.Ops.size()) {
          Class[I] = Class[Rep];
          Found = true;
          break;
        }
      }
      if (!Found) {
        Class[I] = NumClasses++;
        Bucket.push_back(I);
      }
    }
  }

  // Refine until stable: split classes by the class vector of their
  // operands. Signatures are hash-bucketed like the initial partition; each
  // new class is a subset of an old one (the signature leads with the old
  // class), so the partition is stable exactly when the class count stops
  // growing.
  while (true) {
    struct SigRep {
      const std::vector<unsigned> *Sig;
      unsigned Class;
    };
    std::unordered_map<uint64_t, std::vector<SigRep>> Sigs;
    std::vector<std::vector<unsigned>> SigStore(Roots.size());
    std::vector<unsigned> NewClass(Nodes.size(), 0);
    unsigned NewCount = 0;
    for (size_t RI = 0; RI < Roots.size(); ++RI) {
      NodeId I = Roots[RI];
      std::vector<unsigned> &Sig = SigStore[RI];
      Sig.push_back(Class[I]);
      for (NodeId Op : Nodes[I].Ops)
        Sig.push_back(Op == InvalidNode ? ~0u : Class[find(Op)]);
      uint64_t H = hashCombine(0x9e3779b9, Sig.size());
      for (unsigned S : Sig)
        H = hashCombine(H, S);
      std::vector<SigRep> &Bucket = Sigs[H];
      bool Found = false;
      for (const SigRep &Rep : Bucket) {
        if (*Rep.Sig == Sig) {
          NewClass[I] = Rep.Class;
          Found = true;
          break;
        }
      }
      if (!Found) {
        NewClass[I] = NewCount++;
        Bucket.push_back({&Sig, NewClass[I]});
      }
    }
    bool Stable = NewCount == NumClasses;
    Class = std::move(NewClass);
    NumClasses = NewCount;
    if (Stable)
      break;
  }

  // Merge same-class roots (into the smallest id for determinism).
  unsigned Merges = 0;
  std::vector<NodeId> Leader(NumClasses, InvalidNode);
  for (NodeId I : Roots) {
    NodeId &L = Leader[Class[I]];
    if (L == InvalidNode) {
      L = I;
    } else {
      mergeInto(I, L);
      ++Merges;
    }
  }
  return Merges;
}

unsigned ValueGraph::maximizeSharing(SharingStrategy Strategy) {
  unsigned Total = 0;
  switch (Strategy) {
  case SharingStrategy::Simple: {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      unsigned C = congruencePass();
      unsigned M = muUnificationPass();
      Total += C + M;
      Changed = (C + M) > 0;
    }
    return Total;
  }
  case SharingStrategy::Partition: {
    Total += congruencePass();
    Total += partitionRefinementPass();
    Total += congruencePass();
    return Total;
  }
  case SharingStrategy::Combined: {
    Total += maximizeSharing(SharingStrategy::Simple);
    Total += partitionRefinementPass();
    Total += congruencePass();
    return Total;
  }
  }
  return Total;
}

//===----------------------------------------------------------------------===//
// Cone queries
//===----------------------------------------------------------------------===//

bool ValueGraph::coneContainsMu(NodeId Id) const {
  std::set<NodeId> Seen;
  std::vector<NodeId> Work{find(Id)};
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    if (!Seen.insert(N).second)
      continue;
    const Node &Nd = Nodes[N];
    if (Nd.Kind == NodeKind::Mu)
      return true;
    for (NodeId Op : Nd.Ops)
      if (Op != InvalidNode)
        Work.push_back(find(Op));
  }
  return false;
}

bool ValueGraph::isNonEscapingAlloc(NodeId Alloc) const {
  // Pointers *derived* from the allocation (GEPs, and γ/μ/η selections that
  // may yield it) are tracked transitively; the allocation escapes when any
  // derived pointer is stored as a value, passed to a call, or returned.
  std::set<NodeId> Derived{find(Alloc)};
  std::vector<NodeId> Work{find(Alloc)};
  auto Derive = [&](NodeId N) {
    if (Derived.insert(N).second)
      Work.push_back(N);
  };
  while (!Work.empty()) {
    NodeId Target = Work.back();
    Work.pop_back();
    for (NodeId I = 0; I < Nodes.size(); ++I) {
      if (find(I) != I)
        continue;
      const Node &N = Nodes[I];
      for (unsigned K = 0, E = N.Ops.size(); K != E; ++K) {
        if (N.Ops[K] == InvalidNode || find(N.Ops[K]) != Target)
          continue;
        switch (N.Kind) {
        case NodeKind::Load:
          if (K != 0)
            return false; // used as a memory state?! treat as escape
          break;
        case NodeKind::Store:
          if (K != 1)
            return false; // stored as a value: escapes
          break;
        case NodeKind::AllocMem:
          break;
        case NodeKind::Op:
          if (N.Op == Opcode::GEP && K == 0) {
            Derive(I);
            break;
          }
          if (N.Op == Opcode::ICmp)
            break; // address comparisons do not publish the pointer
          return false;
        case NodeKind::Gamma:
          // The γ result may be this pointer; track it. Condition slots
          // (even indices) cannot hold a pointer.
          if (K % 2 == 1)
            Derive(I);
          break;
        case NodeKind::Mu:
          Derive(I);
          break;
        case NodeKind::Eta:
          if (K == 1)
            Derive(I);
          break;
        default:
          return false; // calls, returns, anything else: escape
        }
      }
    }
  }
  return true;
}

std::string ValueGraph::dumpDot(const std::vector<NodeId> &Roots) const {
  std::set<NodeId> Seen;
  std::vector<NodeId> Work;
  for (NodeId R : Roots)
    Work.push_back(find(R));
  std::ostringstream OS;
  OS << "digraph valuegraph {\n  node [shape=box, fontname=\"monospace\"];\n";
  std::vector<std::pair<NodeId, unsigned>> Edges; // (from, operand index)
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    if (!Seen.insert(N).second)
      continue;
    const Node &Nd = Nodes[N];
    std::string Label;
    switch (Nd.Kind) {
    case NodeKind::ConstInt:
      Label = std::to_string(Nd.IntVal);
      break;
    case NodeKind::ConstFloat: {
      std::ostringstream FS;
      FS << Nd.FloatVal;
      Label = FS.str();
      break;
    }
    case NodeKind::Param:
      Label = "param" + std::to_string(Nd.IntVal);
      break;
    case NodeKind::Global:
      Label = "@" + Nd.Str;
      break;
    case NodeKind::Op:
      Label = llvmmd::getOpcodeName(Nd.Op);
      if (Nd.Op == Opcode::ICmp)
        Label += std::string(".") + getPredName(static_cast<ICmpPred>(Nd.Pred));
      break;
    case NodeKind::Gamma:
      Label = "\xce\xb3"; // γ
      break;
    case NodeKind::Mu:
      Label = "\xce\xbc"; // μ
      break;
    case NodeKind::Eta:
      Label = "\xce\xb7"; // η
      break;
    case NodeKind::Call:
      Label = "call " + Nd.Str;
      break;
    default:
      Label = getNodeKindName(Nd.Kind);
      break;
    }
    OS << "  n" << N << " [label=\"n" << N << ": " << Label << "\"";
    if (Nd.Kind == NodeKind::Mu || Nd.Kind == NodeKind::Eta ||
        Nd.Kind == NodeKind::Gamma)
      OS << ", style=rounded";
    OS << "];\n";
    for (unsigned K = 0; K < Nd.Ops.size(); ++K) {
      if (Nd.Ops[K] == InvalidNode)
        continue;
      NodeId Op = find(Nd.Ops[K]);
      // Dashed edges for memory-typed operands (null type), matching the
      // paper's figure style for state edges.
      bool Mem = Nodes[Op].Ty == nullptr;
      OS << "  n" << N << " -> n" << Op;
      if (Mem)
        OS << " [style=dashed]";
      else if (Nd.Kind == NodeKind::Mu)
        OS << " [label=\"" << (K == 0 ? "i" : "next") << "\"]";
      OS << ";\n";
      Work.push_back(Op);
    }
  }
  OS << "}\n";
  return OS.str();
}

namespace {

/// Decomposes a pointer node into (base root, constant byte offset) through
/// GEP chains; Known=false when an index is not a constant.
struct VGDecomposed {
  NodeId Base;
  int64_t Offset;
  bool Known;
};

VGDecomposed decomposeVG(const ValueGraph &G, NodeId P) {
  VGDecomposed D{G.find(P), 0, true};
  while (true) {
    const Node &N = G.node(D.Base);
    if (N.Kind == NodeKind::Op && N.Op == Opcode::GEP) {
      NodeId Idx = G.find(N.Ops[1]);
      const Node &NI = G.node(Idx);
      if (NI.Kind == NodeKind::ConstInt)
        D.Offset += NI.IntVal * N.IntVal; // IntVal of GEP = elem size
      else
        D.Known = false;
      D.Base = G.find(N.Ops[0]);
      continue;
    }
    return D;
  }
}

bool isIdentifiedVG(const Node &N) {
  return N.Kind == NodeKind::Alloc || N.Kind == NodeKind::Global;
}

/// All bases a pointer may resolve to, following GEPs and the selecting
/// structure (γ branches, μ streams, η values). Returns false when the set
/// is unbounded or contains something unanalyzable.
bool possibleBases(const ValueGraph &G, NodeId P, std::set<NodeId> &Out) {
  std::set<NodeId> Seen;
  std::vector<NodeId> Work{G.find(P)};
  while (!Work.empty()) {
    NodeId N = G.find(Work.back());
    Work.pop_back();
    if (!Seen.insert(N).second)
      continue;
    if (Seen.size() > 64)
      return false;
    const Node &Nd = G.node(N);
    switch (Nd.Kind) {
    case NodeKind::Op:
      if (Nd.Op == Opcode::GEP) {
        Work.push_back(Nd.Ops[0]);
        break;
      }
      Out.insert(N);
      break;
    case NodeKind::Gamma:
      for (unsigned K = 1; K < Nd.Ops.size(); K += 2)
        Work.push_back(Nd.Ops[K]);
      break;
    case NodeKind::Mu:
      if (Nd.Ops[0] == InvalidNode)
        return false;
      Work.push_back(Nd.Ops[0]);
      Work.push_back(Nd.Ops[1]);
      break;
    case NodeKind::Eta:
      Work.push_back(Nd.Ops[1]);
      break;
    default:
      Out.insert(N);
      break;
    }
  }
  return true;
}

} // namespace

std::string ValueGraph::dump(const std::vector<NodeId> &Roots) const {
  std::set<NodeId> Seen;
  std::vector<NodeId> Work;
  for (NodeId R : Roots)
    Work.push_back(find(R));
  std::ostringstream OS;
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    if (!Seen.insert(N).second)
      continue;
    const Node &Nd = Nodes[N];
    OS << 'n' << N << " = " << getNodeKindName(Nd.Kind);
    if (Nd.Kind == NodeKind::Op) {
      OS << '.' << getOpcodeName(Nd.Op);
      if (Nd.Op == Opcode::ICmp)
        OS << '.' << getPredName(static_cast<ICmpPred>(Nd.Pred));
      if (Nd.Op == Opcode::FCmp)
        OS << '.' << getPredName(static_cast<FCmpPred>(Nd.Pred));
    }
    if (Nd.Kind == NodeKind::ConstInt || Nd.Kind == NodeKind::Param)
      OS << ' ' << Nd.IntVal;
    if (Nd.Kind == NodeKind::ConstFloat)
      OS << ' ' << Nd.FloatVal;
    if (!Nd.Str.empty())
      OS << " @" << Nd.Str;
    if (Nd.Ty)
      OS << " : " << Nd.Ty->getName();
    OS << " (";
    for (unsigned K = 0; K < Nd.Ops.size(); ++K) {
      if (K)
        OS << ", ";
      if (Nd.Ops[K] == InvalidNode) {
        OS << "<invalid>";
        continue;
      }
      NodeId Op = find(Nd.Ops[K]);
      OS << 'n' << Op;
      Work.push_back(Op);
    }
    OS << ")\n";
  }
  return OS.str();
}

int ValueGraph::aliasPointers(NodeId P, NodeId Q, unsigned SizeP,
                              unsigned SizeQ) const {
  P = find(P);
  Q = find(Q);
  if (P == Q)
    return 2;
  VGDecomposed A = decomposeVG(*this, P);
  VGDecomposed B = decomposeVG(*this, Q);
  if (A.Base == B.Base) {
    if (!A.Known || !B.Known)
      return 1;
    if (A.Offset == B.Offset)
      return 2;
    if (A.Offset + static_cast<int64_t>(SizeP) <= B.Offset ||
        B.Offset + static_cast<int64_t>(SizeQ) <= A.Offset)
      return 0;
    return 1;
  }
  // Different bases: NoAlias only if every possible base of one side is
  // provably distinct from every possible base of the other. γ/μ/η nodes
  // may *select* an allocation, so the non-escaping rule must look through
  // them rather than treat them as fresh objects.
  std::set<NodeId> BasesA, BasesB;
  if (!possibleBases(*this, A.Base, BasesA) ||
      !possibleBases(*this, B.Base, BasesB))
    return 1;
  for (NodeId PA : BasesA) {
    for (NodeId PB : BasesB) {
      if (PA == PB)
        return 1; // may be the same object (offsets unknown here)
      const Node &NA = node(PA);
      const Node &NB = node(PB);
      if (isIdentifiedVG(NA) && isIdentifiedVG(NB))
        continue; // distinct allocations / globals
      if ((NA.Kind == NodeKind::Alloc && isNonEscapingAlloc(PA)) ||
          (NB.Kind == NodeKind::Alloc && isNonEscapingAlloc(PB)))
        continue;
      return 1;
    }
  }
  return 0;
}
