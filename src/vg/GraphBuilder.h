//===- GraphBuilder.h - Function -> shared value graph ----------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed symbolic evaluation (paper Figure 1): compiles a function in
/// Monadic Gated SSA form into the shared value graph. Side effects are
/// threaded through an explicit memory state: loads take the current
/// memory, stores/calls/allocas produce the next one, joins gate memory
/// with γ/μ/η exactly like ordinary values. The function's root is a Ret
/// node over (return value, final memory) — the "state pointer" the
/// validator compares.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_VG_GRAPHBUILDER_H
#define LLVMMD_VG_GRAPHBUILDER_H

#include "vg/ValueGraph.h"

#include <string>

namespace llvmmd {

class Function;

struct BuildResult {
  bool Supported = false;
  std::string Reason;
  NodeId Ret = InvalidNode;
};

/// Builds \p F into \p G. Leaves (parameters, initial memory, constants,
/// globals) are shared across calls, so building the original and the
/// optimized function into one graph yields the paper's shared value graph.
BuildResult buildValueGraph(ValueGraph &G, const Function &F);

} // namespace llvmmd

#endif // LLVMMD_VG_GRAPHBUILDER_H
