//===- GraphBuilder.cpp - Function -> shared value graph ---------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "vg/GraphBuilder.h"

#include "gated/GatedSSA.h"
#include "ir/Module.h"

#include <map>

using namespace llvmmd;

namespace {

class Builder {
public:
  Builder(ValueGraph &G, const Function &F)
      : G(G), F(F), Ctx(F.getParent()->getContext()), GA(F) {}

  BuildResult run() {
    BuildResult R;
    if (!GA.isSupported()) {
      R.Reason = GA.getUnsupportedReason();
      return R;
    }

    const DominatorTree &DT = GA.getDomTree();
    for (const BasicBlock *BB : DT.getRPO()) {
      if (!processBlock(BB)) {
        R.Reason = Failure.empty() ? "unsupported construct" : Failure;
        return R;
      }
    }
    patchMus();
    if (!GA.isSupported() || !Failure.empty()) {
      R.Reason =
          !Failure.empty() ? Failure : GA.getUnsupportedReason();
      return R;
    }
    if (RetNode == InvalidNode) {
      R.Reason = "no return found";
      return R;
    }
    R.Supported = true;
    R.Ret = RetNode;
    return R;
  }

private:
  //===------------------------------------------------------------------===//
  // Leaves and operands
  //===------------------------------------------------------------------===//

  NodeId evalConstant(const Value *V) {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return G.getConstInt(CI->getType(), CI->getSExtValue());
    if (const auto *CF = dyn_cast<ConstantFP>(V))
      return G.getConstFloat(CF->getType(), CF->getValue());
    if (isa<ConstantPointerNull>(V))
      return G.getNull(V->getType());
    if (isa<UndefValue>(V))
      return G.getUndef(V->getType());
    if (const auto *GV = dyn_cast<GlobalVariable>(V))
      return G.getGlobal(GV->getName(), GV->isConstantGlobal(), GV->getType());
    fail("unsupported constant operand");
    return InvalidNode;
  }

  /// Evaluates a use of \p V from \p UserBB, inserting η nodes when the
  /// definition's loop does not contain the user.
  NodeId evalUse(const Value *V, const BasicBlock *UserBB) {
    if (const auto *A = dyn_cast<Argument>(V))
      return G.getParam(A->getIndex(), A->getType());
    if (isa<Constant>(V))
      return evalConstant(V);
    const auto *I = dyn_cast<Instruction>(V);
    if (!I) {
      fail("unsupported value kind");
      return InvalidNode;
    }
    auto It = ValueMap.find(I);
    if (It == ValueMap.end()) {
      fail("use of unevaluated value (non-SSA input?)");
      return InvalidNode;
    }
    NodeId Id = It->second;
    const LoopInfo &LI = GA.getLoopInfo();
    for (const Loop *L = LI.getLoopFor(I->getParent());
         L && !L->contains(UserBB); L = L->getParent())
      Id = wrapEta(*L, Id, I->getType());
    return Id;
  }

  /// η-wraps \p Id for leaving loop \p L through its primary exit edge.
  NodeId wrapEta(const Loop &L, NodeId Id, Type *Ty) {
    auto [Exiting, Exit] = GA.getPrimaryExitEdge(L);
    if (!Exiting) {
      // A loop with no exit: anything escaping it is unreachable anyway.
      return Id;
    }
    const GateExpr *Stay = GA.getStayCondition(L, Exiting, Exit);
    NodeId Cond = gateToNode(Stay, Exiting);
    return G.getEta(Ty, Cond, Id);
  }

  /// η-wraps a *memory* state crossing out of loops: from the definition
  /// context \p DefBB to the user context \p UserBB.
  NodeId wrapMemAcrossLoops(NodeId Mem, const BasicBlock *DefBB,
                            const BasicBlock *UserBB) {
    const LoopInfo &LI = GA.getLoopInfo();
    for (const Loop *L = LI.getLoopFor(DefBB); L && !L->contains(UserBB);
         L = L->getParent())
      Mem = wrapEta(*L, Mem, nullptr);
    return Mem;
  }

  NodeId gateToNode(const GateExpr *E, const BasicBlock *ContextBB) {
    Type *BoolTy = Ctx.getInt1Ty();
    switch (E->K) {
    case GateExpr::Kind::True:
      return G.getConstBool(BoolTy, true);
    case GateExpr::Kind::False:
      return G.getConstBool(BoolTy, false);
    case GateExpr::Kind::Cond:
      return evalUse(E->Cond, ContextBB);
    case GateExpr::Kind::Not: {
      NodeId A = gateToNode(E->A, ContextBB);
      return G.getOp(Opcode::Xor, BoolTy, {A, G.getConstBool(BoolTy, true)});
    }
    case GateExpr::Kind::And: {
      NodeId A = gateToNode(E->A, ContextBB);
      NodeId B = gateToNode(E->B, ContextBB);
      return G.getOp(Opcode::And, BoolTy, {A, B});
    }
    case GateExpr::Kind::Or: {
      NodeId A = gateToNode(E->A, ContextBB);
      NodeId B = gateToNode(E->B, ContextBB);
      return G.getOp(Opcode::Or, BoolTy, {A, B});
    }
    }
    return InvalidNode;
  }

  //===------------------------------------------------------------------===//
  // Memory state per block
  //===------------------------------------------------------------------===//

  bool loopWritesMemory(const Loop &L) const {
    for (const BasicBlock *BB : L.getBlocks())
      for (const Instruction *I : *BB) {
        if (isa<StoreInst>(I) || isa<AllocaInst>(I))
          return true;
        if (const auto *Call = dyn_cast<CallInst>(I))
          if (Call->getCallee()->mayWriteMemory())
            return true;
      }
    return false;
  }

  NodeId computeMemIn(const BasicBlock *BB) {
    const LoopInfo &LI = GA.getLoopInfo();
    if (BB == F.getEntryBlock())
      return G.getInitialMem();

    const Loop *L = LI.getLoopFor(BB);
    bool IsHeader = L && L->getHeader() == BB;

    if (IsHeader && loopWritesMemory(*L)) {
      // μ over memory; iteration side patched later.
      NodeId Mu = G.makeMu(nullptr);
      NodeId Init = mergeEdges(BB, /*InitOnly=*/true);
      PendingMemMus.push_back({BB, Mu});
      MuInit[Mu] = Init;
      return Mu;
    }
    // Ordinary join (or effect-free loop header: latch memory equals the
    // header's own input, so merging the entering edges is exact).
    return mergeEdges(BB, IsHeader);
  }

  /// Merges predecessor memory along incoming forward edges (optionally
  /// only loop-entering edges) into a single state, gating with γ.
  NodeId mergeEdges(const BasicBlock *BB, bool InitOnly) {
    const DominatorTree &DT = GA.getDomTree();
    const LoopInfo &LI = GA.getLoopInfo();
    const Loop *L = LI.getLoopFor(BB);
    std::vector<std::pair<const BasicBlock *, NodeId>> Incoming;
    for (const BasicBlock *P : BB->predecessors()) {
      if (!DT.isReachable(P))
        continue;
      if (InitOnly && L && L->contains(P))
        continue; // skip latches
      auto It = MemOut.find(P);
      if (It == MemOut.end())
        continue; // back edge (patched later) — cannot happen for non-headers
      NodeId M = wrapMemAcrossLoops(It->second, P, BB);
      Incoming.emplace_back(P, M);
    }
    if (Incoming.empty()) {
      fail("block with no evaluated predecessors");
      return InvalidNode;
    }
    if (Incoming.size() == 1)
      return Incoming.front().second;
    bool AllSame = true;
    for (auto &[P, M] : Incoming)
      AllSame &= (G.find(M) == G.find(Incoming.front().second));
    if (AllSame)
      return Incoming.front().second;
    std::vector<std::pair<NodeId, NodeId>> Branches;
    for (auto &[P, M] : Incoming) {
      NodeId C = gateToNode(GA.getEdgeGate(P, BB), BB);
      Branches.emplace_back(C, M);
    }
    return G.getGamma(nullptr, Branches);
  }

  //===------------------------------------------------------------------===//
  // Instruction evaluation
  //===------------------------------------------------------------------===//

  bool processBlock(const BasicBlock *BB) {
    NodeId Mem = computeMemIn(BB);
    if (!Failure.empty())
      return false;

    // φ nodes first (they do not touch memory).
    const LoopInfo &LI = GA.getLoopInfo();
    const Loop *L = LI.getLoopFor(BB);
    bool IsHeader = L && L->getHeader() == BB;
    for (const PhiNode *P : BB->phis()) {
      NodeId Id = IsHeader ? buildLoopPhi(P, *L) : buildGatedPhi(P);
      if (Id == InvalidNode)
        return false;
      ValueMap[P] = Id;
    }

    for (const Instruction *I : *BB) {
      if (I->isPhi())
        continue;
      if (!evalInstruction(I, BB, Mem))
        return false;
    }
    MemOut[BB] = Mem;
    return true;
  }

  NodeId buildGatedPhi(const PhiNode *P) {
    std::vector<std::pair<NodeId, NodeId>> Branches;
    for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
      const BasicBlock *Pred = P->getIncomingBlock(K);
      if (!GA.getDomTree().isReachable(Pred))
        continue;
      NodeId C = gateToNode(GA.getEdgeGate(Pred, P->getParent()),
                            P->getParent());
      NodeId V = evalUse(P->getIncomingValue(K), P->getParent());
      if (!GA.isSupported()) {
        fail(GA.getUnsupportedReason());
        return InvalidNode;
      }
      if (V == InvalidNode || C == InvalidNode)
        return InvalidNode;
      Branches.emplace_back(C, V);
    }
    if (Branches.empty()) {
      fail("phi with no reachable incoming edges");
      return InvalidNode;
    }
    return G.getGamma(P->getType(), Branches);
  }

  NodeId buildLoopPhi(const PhiNode *P, const Loop &L) {
    // Initial side: entering edges (evaluable now, preds already processed).
    std::vector<std::pair<NodeId, NodeId>> InitBranches;
    for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
      const BasicBlock *Pred = P->getIncomingBlock(K);
      if (!GA.getDomTree().isReachable(Pred) || L.contains(Pred))
        continue;
      NodeId V = evalUse(P->getIncomingValue(K), P->getParent());
      if (V == InvalidNode)
        return InvalidNode;
      NodeId C = gateToNode(GA.getEdgeGate(Pred, P->getParent()),
                            P->getParent());
      InitBranches.emplace_back(C, V);
    }
    if (InitBranches.empty()) {
      fail("loop header phi without initial value");
      return InvalidNode;
    }
    NodeId Init = InitBranches.size() == 1
                      ? InitBranches.front().second
                      : G.getGamma(P->getType(), InitBranches);
    NodeId Mu = G.makeMu(P->getType());
    MuInit[Mu] = Init;
    PendingValueMus.push_back({P, Mu});
    return Mu;
  }

  bool evalInstruction(const Instruction *I, const BasicBlock *BB,
                       NodeId &Mem) {
    switch (I->getOpcode()) {
    case Opcode::ICmp: {
      const auto *C = cast<ICmpInst>(I);
      NodeId L = evalUse(C->getLHS(), BB), R = evalUse(C->getRHS(), BB);
      if (L == InvalidNode || R == InvalidNode)
        return false;
      ValueMap[I] = G.getOp(Opcode::ICmp, I->getType(), {L, R},
                            static_cast<uint8_t>(C->getPred()));
      return true;
    }
    case Opcode::FCmp: {
      const auto *C = cast<FCmpInst>(I);
      NodeId L = evalUse(C->getLHS(), BB), R = evalUse(C->getRHS(), BB);
      if (L == InvalidNode || R == InvalidNode)
        return false;
      ValueMap[I] = G.getOp(Opcode::FCmp, I->getType(), {L, R},
                            static_cast<uint8_t>(C->getPred()));
      return true;
    }
    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt: {
      NodeId S = evalUse(I->getOperand(0), BB);
      if (S == InvalidNode)
        return false;
      ValueMap[I] = G.getOp(I->getOpcode(), I->getType(), {S});
      return true;
    }
    case Opcode::Select: {
      const auto *S = cast<SelectInst>(I);
      NodeId C = evalUse(S->getCondition(), BB);
      NodeId T = evalUse(S->getTrueValue(), BB);
      NodeId E = evalUse(S->getFalseValue(), BB);
      if (C == InvalidNode || T == InvalidNode || E == InvalidNode)
        return false;
      Type *BoolTy = Ctx.getInt1Ty();
      NodeId NotC =
          G.getOp(Opcode::Xor, BoolTy, {C, G.getConstBool(BoolTy, true)});
      ValueMap[I] = G.getGamma(I->getType(), {{C, T}, {NotC, E}});
      return true;
    }
    case Opcode::Alloca: {
      const auto *A = cast<AllocaInst>(I);
      NodeId Count = evalUse(A->getCount(), BB);
      if (Count == InvalidNode)
        return false;
      NodeId Alloc =
          G.getAlloc(Count, Mem, A->getAllocatedType()->getStoreSize());
      ValueMap[I] = Alloc;
      Mem = G.getAllocMem(Alloc);
      return true;
    }
    case Opcode::Load: {
      const auto *Ld = cast<LoadInst>(I);
      NodeId P = evalUse(Ld->getPointer(), BB);
      if (P == InvalidNode)
        return false;
      ValueMap[I] = G.getLoad(I->getType(), P, Mem);
      return true;
    }
    case Opcode::Store: {
      const auto *St = cast<StoreInst>(I);
      NodeId V = evalUse(St->getStoredValue(), BB);
      NodeId P = evalUse(St->getPointer(), BB);
      if (V == InvalidNode || P == InvalidNode)
        return false;
      Mem = G.getStore(V, P, Mem);
      return true;
    }
    case Opcode::GEP: {
      const auto *GEP = cast<GEPInst>(I);
      NodeId B = evalUse(GEP->getBase(), BB);
      NodeId Idx = evalUse(GEP->getIndex(), BB);
      if (B == InvalidNode || Idx == InvalidNode)
        return false;
      ValueMap[I] = G.getOp(Opcode::GEP, I->getType(), {B, Idx}, 0,
                            GEP->getElementType()->getStoreSize());
      return true;
    }
    case Opcode::Call: {
      const auto *Call = cast<CallInst>(I);
      const Function *Callee = Call->getCallee();
      std::vector<NodeId> Ops;
      for (unsigned A = 0, E = Call->getNumArgs(); A != E; ++A) {
        NodeId V = evalUse(Call->getArg(A), BB);
        if (V == InvalidNode)
          return false;
        Ops.push_back(V);
      }
      // Monadic calls: readnone calls are pure functions of their
      // arguments; readonly calls additionally take the memory state; and
      // writing calls also produce a new memory state.
      if (!Callee->isReadNone())
        Ops.push_back(Mem);
      NodeId C = G.getCall(Callee->getName(), Callee->getMemoryEffect(),
                           I->getType(), std::move(Ops));
      if (!I->getType()->isVoid())
        ValueMap[I] = C;
      if (Callee->mayWriteMemory())
        Mem = G.getCallMem(C);
      return true;
    }
    case Opcode::Br:
    case Opcode::Unreachable:
      return true;
    case Opcode::Ret: {
      const auto *R = cast<ReturnInst>(I);
      NodeId V = InvalidNode;
      if (R->hasReturnValue()) {
        V = evalUse(R->getReturnValue(), BB);
        if (V == InvalidNode)
          return false;
      }
      RetNode = G.getRet(V, Mem);
      return true;
    }
    default: {
      assert(I->isBinaryOp() && "unhandled opcode in graph builder");
      NodeId L = evalUse(I->getOperand(0), BB);
      NodeId R = evalUse(I->getOperand(1), BB);
      if (L == InvalidNode || R == InvalidNode)
        return false;
      ValueMap[I] = G.getOp(I->getOpcode(), I->getType(), {L, R});
      return true;
    }
    }
  }

  //===------------------------------------------------------------------===//
  // μ patching (after the whole body is evaluated)
  //===------------------------------------------------------------------===//

  void patchMus() {
    for (auto &[P, Mu] : PendingValueMus) {
      const Loop *L = GA.getLoopInfo().getLoopFor(P->getParent());
      assert(L && "pending mu outside loop");
      std::vector<std::pair<NodeId, NodeId>> LatchBranches;
      for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
        const BasicBlock *Pred = P->getIncomingBlock(K);
        if (!GA.getDomTree().isReachable(Pred) || !L->contains(Pred))
          continue;
        NodeId V = evalUse(P->getIncomingValue(K), P->getParent());
        if (V == InvalidNode)
          return;
        NodeId C = gateToNode(GA.getLatchGate(Pred, P->getParent()),
                              P->getParent());
        LatchBranches.emplace_back(C, V);
      }
      if (LatchBranches.empty()) {
        fail("loop header phi without latch value");
        return;
      }
      NodeId Next = LatchBranches.size() == 1
                        ? LatchBranches.front().second
                        : G.getGamma(P->getType(), LatchBranches);
      G.setMuOperands(Mu, MuInit[Mu], Next);
    }
    for (auto &[Header, Mu] : PendingMemMus) {
      const Loop *L = GA.getLoopInfo().getLoopFor(Header);
      assert(L && L->getHeader() == Header && "bad pending memory mu");
      std::vector<std::pair<NodeId, NodeId>> LatchBranches;
      for (const BasicBlock *Latch : L->getLatches()) {
        auto It = MemOut.find(Latch);
        if (It == MemOut.end())
          continue;
        NodeId C = gateToNode(GA.getLatchGate(Latch, Header), Header);
        LatchBranches.emplace_back(C, It->second);
      }
      if (LatchBranches.empty()) {
        fail("memory mu without latch state");
        return;
      }
      NodeId Next = LatchBranches.size() == 1
                        ? LatchBranches.front().second
                        : G.getGamma(nullptr, LatchBranches);
      G.setMuOperands(Mu, MuInit[Mu], Next);
    }
  }

  void fail(const std::string &Why) {
    if (Failure.empty())
      Failure = Why;
  }

  ValueGraph &G;
  const Function &F;
  Context &Ctx;
  GatingAnalysis GA;
  std::map<const Value *, NodeId> ValueMap;
  std::map<const BasicBlock *, NodeId> MemOut;
  std::map<NodeId, NodeId> MuInit;
  std::vector<std::pair<const PhiNode *, NodeId>> PendingValueMus;
  std::vector<std::pair<const BasicBlock *, NodeId>> PendingMemMus;
  NodeId RetNode = InvalidNode;
  std::string Failure;
};

} // namespace

BuildResult llvmmd::buildValueGraph(ValueGraph &G, const Function &F) {
  return Builder(G, F).run();
}
