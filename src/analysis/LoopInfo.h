//===- LoopInfo.h - Natural loop detection ----------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loop discovery from back edges (edges whose target dominates
/// their source). Loops carry their header, blocks, latches, preheader (if
/// unique), exiting edges, and nesting. Functions whose CFG contains a
/// retreating edge that is not a back edge are flagged irreducible; the
/// Gated SSA front-end rejects those, matching the paper (§5.1).
///
/// Every order this analysis exposes — loop discovery, block membership,
/// exiting/exit lists, nesting ties — is derived from the CFG's RPO, never
/// from pointer values. Passes iterate these lists to decide where hoisted
/// or cloned code lands, so pointer-ordered iteration here used to make
/// optimization results depend on heap-allocation history (the engine's
/// resubmission divergence) and, with concurrent interning, on scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_ANALYSIS_LOOPINFO_H
#define LLVMMD_ANALYSIS_LOOPINFO_H

#include <map>
#include <memory>
#include <set>
#include <vector>

namespace llvmmd {

class BasicBlock;
class DominatorTree;
class Function;

class Loop {
public:
  BasicBlock *getHeader() const { return Header; }
  Loop *getParent() const { return Parent; }
  const std::vector<Loop *> &getSubLoops() const { return SubLoops; }
  /// Member blocks in RPO order (header first). Deterministic: passes
  /// iterate this to hoist/clone/delete, so it must not depend on pointer
  /// values.
  const std::vector<BasicBlock *> &getBlocks() const { return Blocks; }
  bool contains(const BasicBlock *BB) const {
    return BlockSet.count(const_cast<BasicBlock *>(BB)) != 0;
  }
  unsigned getDepth() const {
    unsigned D = 1;
    for (const Loop *L = Parent; L; L = L->getParent())
      ++D;
    return D;
  }

  /// Blocks inside the loop with a back edge to the header.
  const std::vector<BasicBlock *> &getLatches() const { return Latches; }

  /// The unique out-of-loop predecessor of the header whose only successor
  /// is the header, or null if there is none.
  BasicBlock *getPreheader() const { return Preheader; }

  /// Loop-entering predecessors of the header (outside the loop).
  const std::vector<BasicBlock *> &getEntering() const { return Entering; }

  /// In-loop blocks with a successor outside the loop.
  const std::vector<BasicBlock *> &getExitingBlocks() const {
    return Exiting;
  }
  /// Out-of-loop successors of exiting blocks (deduplicated).
  const std::vector<BasicBlock *> &getExitBlocks() const { return Exits; }

  /// Registers a freshly created block (e.g. a preheader) as a member of
  /// this loop and all enclosing loops, keeping membership queries correct
  /// for transformations that run after the block was inserted. Appended at
  /// the end of the block list: insertion order is program order, so the
  /// list stays deterministic.
  void addBlock(BasicBlock *BB) {
    for (Loop *L = this; L; L = L->Parent)
      if (L->BlockSet.insert(BB).second)
        L->Blocks.push_back(BB);
  }

private:
  friend class LoopInfo;
  BasicBlock *Header = nullptr;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
  std::vector<BasicBlock *> Blocks; ///< RPO order; see getBlocks()
  std::set<BasicBlock *> BlockSet;  ///< membership mirror of Blocks
  std::vector<BasicBlock *> Latches;
  BasicBlock *Preheader = nullptr;
  std::vector<BasicBlock *> Entering;
  std::vector<BasicBlock *> Exiting;
  std::vector<BasicBlock *> Exits;
};

class LoopInfo {
public:
  LoopInfo(const Function &F, const DominatorTree &DT);

  /// Innermost loop containing \p BB, or null.
  Loop *getLoopFor(const BasicBlock *BB) const {
    auto It = BlockMap.find(const_cast<BasicBlock *>(BB));
    return It == BlockMap.end() ? nullptr : It->second;
  }

  bool isLoopHeader(const BasicBlock *BB) const {
    Loop *L = getLoopFor(BB);
    return L && L->getHeader() == BB;
  }

  /// Top-level loops (not contained in any other loop).
  const std::vector<Loop *> &getTopLevelLoops() const { return TopLevel; }

  /// All loops, innermost first.
  std::vector<Loop *> getLoopsInnermostFirst() const;

  /// True if a retreating edge that is not a back edge was found.
  bool isIrreducible() const { return Irreducible; }

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<Loop *> TopLevel;
  std::map<BasicBlock *, Loop *> BlockMap;
  bool Irreducible = false;
};

} // namespace llvmmd

#endif // LLVMMD_ANALYSIS_LOOPINFO_H
