//===- AliasAnalysis.cpp - Simple may-alias analysis ---------------------====//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasAnalysis.h"

#include "ir/Function.h"
#include "ir/Module.h"

using namespace llvmmd;

AliasAnalysis::AliasAnalysis(const Function &F) {
  if (F.isDeclaration())
    return;
  // An alloca escapes if its address (or a GEP of it) is stored anywhere,
  // passed to a call, or returned. We run a small fixpoint over the
  // "address-of" dataflow: derived = {alloca} closed under GEP.
  for (const auto &BB : F.blocks()) {
    for (const Instruction *I : *BB) {
      const auto *AI = dyn_cast<AllocaInst>(I);
      if (!AI)
        continue;
      bool Escapes = false;
      std::vector<const Value *> Work{AI};
      std::set<const Value *> Seen{AI};
      while (!Work.empty() && !Escapes) {
        const Value *V = Work.back();
        Work.pop_back();
        for (const User *U : V->users()) {
          const auto *UI = dyn_cast<Instruction>(U);
          if (!UI)
            continue;
          switch (UI->getOpcode()) {
          case Opcode::Load:
            break; // reading through the pointer is fine
          case Opcode::Store:
            // Storing *to* the alloca is fine; storing the pointer escapes.
            if (cast<StoreInst>(UI)->getStoredValue() == V)
              Escapes = true;
            break;
          case Opcode::GEP:
            if (Seen.insert(UI).second)
              Work.push_back(UI);
            break;
          case Opcode::ICmp:
            break; // comparing addresses does not publish them
          case Opcode::Call:
          case Opcode::Ret:
            Escapes = true;
            break;
          case Opcode::Phi:
          case Opcode::Select:
            // Conservative: merged pointers are hard to track.
            Escapes = true;
            break;
          default:
            Escapes = true;
            break;
          }
          if (Escapes)
            break;
        }
      }
      if (!Escapes)
        NonEscaping.insert(AI);
    }
  }
}

AliasAnalysis::Decomposed AliasAnalysis::decompose(const Value *Ptr) {
  int64_t Offset = 0;
  bool Known = true;
  const Value *V = Ptr;
  while (const auto *GEP = dyn_cast<GEPInst>(V)) {
    if (const auto *CI = dyn_cast<ConstantInt>(GEP->getIndex())) {
      Offset += CI->getSExtValue() *
                static_cast<int64_t>(GEP->getElementType()->getStoreSize());
    } else {
      Known = false;
    }
    V = GEP->getBase();
  }
  Decomposed D;
  D.Base = V;
  if (Known)
    D.Offset = Offset;
  return D;
}

bool AliasAnalysis::isIdentifiedObject(const Value *V) {
  return isa<AllocaInst>(V) || isa<GlobalVariable>(V);
}

AliasResult AliasAnalysis::alias(const Value *PtrA, unsigned SizeA,
                                 const Value *PtrB, unsigned SizeB) const {
  if (PtrA == PtrB)
    return AliasResult::MustAlias;

  Decomposed A = decompose(PtrA);
  Decomposed B = decompose(PtrB);

  if (A.Base == B.Base) {
    if (!A.Offset || !B.Offset)
      return AliasResult::MayAlias;
    int64_t OA = *A.Offset, OB = *B.Offset;
    if (OA == OB)
      return AliasResult::MustAlias;
    // Disjoint byte ranges?
    if (OA + static_cast<int64_t>(SizeA) <= OB ||
        OB + static_cast<int64_t>(SizeB) <= OA)
      return AliasResult::NoAlias;
    return AliasResult::MayAlias;
  }

  // Distinct identified objects never alias (the paper's "two pointers that
  // originate from two distinct stack allocations may not alias").
  if (isIdentifiedObject(A.Base) && isIdentifiedObject(B.Base))
    return AliasResult::NoAlias;

  // A non-escaping alloca cannot alias anything not derived from it.
  if ((isa<AllocaInst>(A.Base) && NonEscaping.count(A.Base)) ||
      (isa<AllocaInst>(B.Base) && NonEscaping.count(B.Base)))
    return AliasResult::NoAlias;

  return AliasResult::MayAlias;
}
