//===- Dominators.cpp - Dominator tree ---------------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include "analysis/CFG.h"
#include "ir/Function.h"

using namespace llvmmd;

const std::vector<BasicBlock *> DominatorTree::Empty;

DominatorTree::DominatorTree(const Function &F) {
  RPO = computeRPO(F);
  if (RPO.empty())
    return;
  for (unsigned I = 0, E = RPO.size(); I != E; ++I)
    Index[RPO[I]] = I;

  // Cooper-Harvey-Kennedy: iterate to fixpoint over RPO.
  std::vector<int> IDom(RPO.size(), -1);
  IDom[0] = 0;
  auto Intersect = [&](int A, int B) {
    while (A != B) {
      while (A > B)
        A = IDom[A];
      while (B > A)
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1, E = RPO.size(); I != E; ++I) {
      int NewIDom = -1;
      for (BasicBlock *Pred : RPO[I]->predecessors()) {
        auto It = Index.find(Pred);
        if (It == Index.end())
          continue; // unreachable predecessor
        int P = static_cast<int>(It->second);
        if (IDom[P] < 0)
          continue; // not yet processed
        NewIDom = NewIDom < 0 ? P : Intersect(NewIDom, P);
      }
      if (NewIDom >= 0 && IDom[I] != NewIDom) {
        IDom[I] = NewIDom;
        Changed = true;
      }
    }
  }

  for (unsigned I = 0, E = RPO.size(); I != E; ++I) {
    NodeInfo &N = Nodes[RPO[I]];
    if (I == 0) {
      N.IDom = nullptr;
      continue;
    }
    N.IDom = RPO[IDom[I]];
    Nodes[N.IDom].Children.push_back(RPO[I]);
  }

  // DFS numbering for O(1) dominance queries.
  unsigned Clock = 0;
  struct Frame {
    const BasicBlock *BB;
    size_t Next = 0;
  };
  std::vector<Frame> Stack{{RPO[0], 0}};
  Nodes[RPO[0]].DFSIn = Clock++;
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    NodeInfo &N = Nodes[Top.BB];
    if (Top.Next < N.Children.size()) {
      const BasicBlock *Child = N.Children[Top.Next++];
      Nodes[Child].DFSIn = Clock++;
      Stack.push_back({Child, 0});
      continue;
    }
    N.DFSOut = Clock++;
    Stack.pop_back();
  }
}

BasicBlock *DominatorTree::getIDom(const BasicBlock *BB) const {
  auto It = Nodes.find(BB);
  return It == Nodes.end() ? nullptr : It->second.IDom;
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  auto ItA = Nodes.find(A);
  auto ItB = Nodes.find(B);
  if (ItA == Nodes.end() || ItB == Nodes.end())
    return false;
  return ItA->second.DFSIn <= ItB->second.DFSIn &&
         ItB->second.DFSOut <= ItA->second.DFSOut;
}

const std::vector<BasicBlock *> &
DominatorTree::getChildren(const BasicBlock *BB) const {
  auto It = Nodes.find(BB);
  return It == Nodes.end() ? Empty : It->second.Children;
}

std::vector<BasicBlock *> DominatorTree::preorder() const {
  std::vector<BasicBlock *> Out;
  if (RPO.empty())
    return Out;
  std::vector<BasicBlock *> Stack{RPO[0]};
  while (!Stack.empty()) {
    BasicBlock *BB = Stack.back();
    Stack.pop_back();
    Out.push_back(BB);
    const auto &Kids = getChildren(BB);
    for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
      Stack.push_back(*It);
  }
  return Out;
}
