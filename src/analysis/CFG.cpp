//===- CFG.cpp - Control-flow graph utilities -------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include "ir/Function.h"

#include <algorithm>
#include <set>

using namespace llvmmd;

std::vector<BasicBlock *> llvmmd::computeRPO(const Function &F) {
  std::vector<BasicBlock *> PostOrder;
  std::set<BasicBlock *> Visited;
  if (F.isDeclaration())
    return PostOrder;

  // Iterative DFS computing post-order.
  struct Frame {
    BasicBlock *BB;
    std::vector<BasicBlock *> Succs;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  BasicBlock *Entry = F.getEntryBlock();
  Visited.insert(Entry);
  Stack.push_back({Entry, Entry->successors()});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Next < Top.Succs.size()) {
      BasicBlock *Succ = Top.Succs[Top.Next++];
      if (Visited.insert(Succ).second)
        Stack.push_back({Succ, Succ->successors()});
      continue;
    }
    PostOrder.push_back(Top.BB);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

std::vector<BasicBlock *> llvmmd::reachableBlocks(const Function &F) {
  std::vector<BasicBlock *> Out;
  std::set<BasicBlock *> Visited;
  if (F.isDeclaration())
    return Out;
  std::vector<BasicBlock *> Work{F.getEntryBlock()};
  Visited.insert(F.getEntryBlock());
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    Out.push_back(BB);
    for (BasicBlock *Succ : BB->successors())
      if (Visited.insert(Succ).second)
        Work.push_back(Succ);
  }
  return Out;
}
