//===- Dominators.h - Dominator tree ----------------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree built with the Cooper-Harvey-Kennedy iterative algorithm
/// over reverse post-order, with DFS interval numbering for O(1) dominance
/// queries.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_ANALYSIS_DOMINATORS_H
#define LLVMMD_ANALYSIS_DOMINATORS_H

#include <map>
#include <vector>

namespace llvmmd {

class BasicBlock;
class Function;

class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  bool isReachable(const BasicBlock *BB) const {
    return Index.count(const_cast<BasicBlock *>(BB)) != 0;
  }

  /// Immediate dominator; null for the entry block and unreachable blocks.
  BasicBlock *getIDom(const BasicBlock *BB) const;

  /// Reflexive dominance: every block dominates itself.
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;
  bool properlyDominates(const BasicBlock *A, const BasicBlock *B) const {
    return A != B && dominates(A, B);
  }

  /// Children of \p BB in the dominator tree.
  const std::vector<BasicBlock *> &getChildren(const BasicBlock *BB) const;

  /// Reachable blocks in reverse post-order (entry first).
  const std::vector<BasicBlock *> &getRPO() const { return RPO; }

  /// Blocks in a preorder walk of the dominator tree (entry first); visiting
  /// in this order guarantees idom-before-block.
  std::vector<BasicBlock *> preorder() const;

private:
  struct NodeInfo {
    BasicBlock *IDom = nullptr;
    std::vector<BasicBlock *> Children;
    unsigned DFSIn = 0;
    unsigned DFSOut = 0;
  };

  std::vector<BasicBlock *> RPO;
  std::map<BasicBlock *, unsigned> Index; // block -> RPO index
  std::map<const BasicBlock *, NodeInfo> Nodes;
  static const std::vector<BasicBlock *> Empty;
};

} // namespace llvmmd

#endif // LLVMMD_ANALYSIS_DOMINATORS_H
