//===- CFG.h - Control-flow graph utilities ---------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reverse post-order computation and reachability over the CFG of a
/// function. All analyses in this repo work on reachable blocks only.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_ANALYSIS_CFG_H
#define LLVMMD_ANALYSIS_CFG_H

#include <vector>

namespace llvmmd {

class BasicBlock;
class Function;

/// Blocks reachable from entry in reverse post-order (entry first).
std::vector<BasicBlock *> computeRPO(const Function &F);

/// Blocks reachable from entry, in DFS discovery order.
std::vector<BasicBlock *> reachableBlocks(const Function &F);

} // namespace llvmmd

#endif // LLVMMD_ANALYSIS_CFG_H
