//===- AliasAnalysis.h - Simple may-alias analysis --------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-aliasing rules the paper relies on: pointers from distinct stack
/// allocations never alias; pointers forged with getelementptr at different
/// constant offsets from the same base never alias; distinct globals never
/// alias; non-escaping allocas never alias unrelated pointers. Everything
/// else is MayAlias. Both the optimizer (GVN, LICM, DSE) and the
/// validator's load/store rules consume this analysis.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_ANALYSIS_ALIASANALYSIS_H
#define LLVMMD_ANALYSIS_ALIASANALYSIS_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>

namespace llvmmd {

class Function;
class Value;

enum class AliasResult : uint8_t { NoAlias, MayAlias, MustAlias };

class AliasAnalysis {
public:
  /// Analyzes \p F (computes alloca escape information once).
  explicit AliasAnalysis(const Function &F);

  /// Relation between the memory locations addressed by two pointers, given
  /// the access sizes in bytes.
  AliasResult alias(const Value *PtrA, unsigned SizeA, const Value *PtrB,
                    unsigned SizeB) const;

  /// Convenience overload assuming the same (unknown) access footprint:
  /// only NoAlias/MustAlias answers are then reliable for full overlap.
  AliasResult alias(const Value *PtrA, const Value *PtrB) const {
    return alias(PtrA, 1, PtrB, 1);
  }

  /// True if \p V is an alloca whose address never escapes the function
  /// (not stored, not passed to calls, not returned).
  bool isNonEscapingAlloca(const Value *V) const {
    return NonEscaping.count(V) != 0;
  }

  /// Decomposes \p Ptr into (base, constant byte offset) through GEP chains
  /// with constant indices; nullopt offset when an index is not constant.
  struct Decomposed {
    const Value *Base;
    std::optional<int64_t> Offset;
  };
  static Decomposed decompose(const Value *Ptr);

  /// True if \p V is an "identified object": an alloca or a global, whose
  /// address is distinct from every other identified object.
  static bool isIdentifiedObject(const Value *V);

private:
  std::set<const Value *> NonEscaping;
};

} // namespace llvmmd

#endif // LLVMMD_ANALYSIS_ALIASANALYSIS_H
