//===- LoopInfo.cpp - Natural loop detection ----------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <algorithm>

using namespace llvmmd;

LoopInfo::LoopInfo(const Function &F, const DominatorTree &DT) {
  (void)F; // the CFG is reached through the dominator tree's RPO
  const std::vector<BasicBlock *> &RPO = DT.getRPO();
  std::map<BasicBlock *, unsigned> RPOIndex;
  for (unsigned I = 0, E = RPO.size(); I != E; ++I)
    RPOIndex[RPO[I]] = I;

  // Collect back edges; detect irreducibility: a retreating edge (target
  // earlier in RPO) whose target does not dominate the source.
  std::map<BasicBlock *, std::vector<BasicBlock *>> BackEdges;
  for (BasicBlock *BB : RPO) {
    for (BasicBlock *Succ : BB->successors()) {
      auto It = RPOIndex.find(Succ);
      if (It == RPOIndex.end())
        continue;
      if (It->second <= RPOIndex[BB]) {
        if (DT.dominates(Succ, BB))
          BackEdges[Succ].push_back(BB);
        else
          Irreducible = true;
      }
    }
  }
  if (Irreducible)
    return;

  // Build a loop per header; blocks = header + backward closure of latches.
  for (auto &[Header, Latches] : BackEdges) {
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Latches = Latches;
    L->Blocks.insert(Header);
    std::vector<BasicBlock *> Work(Latches.begin(), Latches.end());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!L->Blocks.insert(BB).second)
        continue;
      for (BasicBlock *Pred : BB->predecessors())
        if (DT.isReachable(Pred) && Pred != Header)
          Work.push_back(Pred);
    }
    Loops.push_back(std::move(L));
  }

  // Nesting: loop A is inside loop B iff B contains A's header and A != B.
  // Sort by block count so parents (larger) are matched after children.
  std::vector<Loop *> BydSize;
  for (auto &L : Loops)
    BydSize.push_back(L.get());
  std::sort(BydSize.begin(), BydSize.end(), [](Loop *A, Loop *B) {
    return A->Blocks.size() < B->Blocks.size();
  });
  for (unsigned I = 0, E = BydSize.size(); I != E; ++I) {
    Loop *Inner = BydSize[I];
    for (unsigned J = I + 1; J != E; ++J) {
      Loop *Outer = BydSize[J];
      if (Outer->contains(Inner->Header) && Outer != Inner) {
        Inner->Parent = Outer;
        Outer->SubLoops.push_back(Inner);
        break;
      }
    }
  }
  for (auto &L : Loops)
    if (!L->Parent)
      TopLevel.push_back(L.get());

  // Innermost-loop map: assign smaller loops first, never overwrite.
  for (Loop *L : BydSize)
    for (BasicBlock *BB : L->Blocks)
      BlockMap.try_emplace(BB, L);

  // Preheaders, entering blocks, exits.
  for (auto &L : Loops) {
    for (BasicBlock *Pred : L->Header->predecessors()) {
      if (!DT.isReachable(Pred) || L->contains(Pred))
        continue;
      L->Entering.push_back(Pred);
    }
    if (L->Entering.size() == 1 &&
        L->Entering.front()->successors().size() == 1)
      L->Preheader = L->Entering.front();

    std::set<BasicBlock *> ExitSet;
    for (BasicBlock *BB : L->Blocks) {
      bool IsExiting = false;
      for (BasicBlock *Succ : BB->successors()) {
        if (!L->contains(Succ)) {
          IsExiting = true;
          ExitSet.insert(Succ);
        }
      }
      if (IsExiting)
        L->Exiting.push_back(BB);
    }
    L->Exits.assign(ExitSet.begin(), ExitSet.end());
  }
}

std::vector<Loop *> LoopInfo::getLoopsInnermostFirst() const {
  std::vector<Loop *> Out;
  // Post-order over the loop forest.
  struct Frame {
    Loop *L;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  for (Loop *Top : TopLevel) {
    Stack.push_back({Top, 0});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (F.Next < F.L->getSubLoops().size()) {
        Stack.push_back({F.L->getSubLoops()[F.Next++], 0});
        continue;
      }
      Out.push_back(F.L);
      Stack.pop_back();
    }
  }
  return Out;
}
