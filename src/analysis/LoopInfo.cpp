//===- LoopInfo.cpp - Natural loop detection ----------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <algorithm>

using namespace llvmmd;

LoopInfo::LoopInfo(const Function &F, const DominatorTree &DT) {
  (void)F; // the CFG is reached through the dominator tree's RPO
  const std::vector<BasicBlock *> &RPO = DT.getRPO();
  std::map<BasicBlock *, unsigned> RPOIndex;
  for (unsigned I = 0, E = RPO.size(); I != E; ++I)
    RPOIndex[RPO[I]] = I;

  // Collect back edges; detect irreducibility: a retreating edge (target
  // earlier in RPO) whose target does not dominate the source.
  std::map<BasicBlock *, std::vector<BasicBlock *>> BackEdges;
  for (BasicBlock *BB : RPO) {
    for (BasicBlock *Succ : BB->successors()) {
      auto It = RPOIndex.find(Succ);
      if (It == RPOIndex.end())
        continue;
      if (It->second <= RPOIndex[BB]) {
        if (DT.dominates(Succ, BB))
          BackEdges[Succ].push_back(BB);
        else
          Irreducible = true;
      }
    }
  }
  if (Irreducible)
    return;

  // Build a loop per header, in RPO order of the headers (BackEdges is a
  // pointer-keyed map; iterating it directly would order loops — and thus
  // every pass that walks them — by allocation address). Blocks = header +
  // backward closure of latches, sorted into RPO afterwards so getBlocks()
  // iteration is deterministic program order.
  for (BasicBlock *Header : RPO) {
    auto BEIt = BackEdges.find(Header);
    if (BEIt == BackEdges.end())
      continue;
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Latches = BEIt->second;
    L->BlockSet.insert(Header);
    std::vector<BasicBlock *> Work(L->Latches.begin(), L->Latches.end());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!L->BlockSet.insert(BB).second)
        continue;
      for (BasicBlock *Pred : BB->predecessors())
        if (DT.isReachable(Pred) && Pred != Header)
          Work.push_back(Pred);
    }
    L->Blocks.assign(L->BlockSet.begin(), L->BlockSet.end());
    std::sort(L->Blocks.begin(), L->Blocks.end(),
              [&](BasicBlock *A, BasicBlock *B) {
                return RPOIndex.find(A)->second < RPOIndex.find(B)->second;
              });
    Loops.push_back(std::move(L));
  }

  // Nesting: loop A is inside loop B iff B contains A's header and A != B.
  // Sort by block count so parents (larger) are matched after children;
  // ties break by header RPO index, never by pointer.
  std::vector<Loop *> BydSize;
  for (auto &L : Loops)
    BydSize.push_back(L.get());
  std::sort(BydSize.begin(), BydSize.end(), [&](Loop *A, Loop *B) {
    if (A->Blocks.size() != B->Blocks.size())
      return A->Blocks.size() < B->Blocks.size();
    return RPOIndex[A->Header] < RPOIndex[B->Header];
  });
  for (unsigned I = 0, E = BydSize.size(); I != E; ++I) {
    Loop *Inner = BydSize[I];
    for (unsigned J = I + 1; J != E; ++J) {
      Loop *Outer = BydSize[J];
      if (Outer->contains(Inner->Header) && Outer != Inner) {
        Inner->Parent = Outer;
        Outer->SubLoops.push_back(Inner);
        break;
      }
    }
  }
  for (auto &L : Loops)
    if (!L->Parent)
      TopLevel.push_back(L.get());

  // Innermost-loop map: assign smaller loops first, never overwrite.
  for (Loop *L : BydSize)
    for (BasicBlock *BB : L->Blocks)
      BlockMap.try_emplace(BB, L);

  // Preheaders, entering blocks, exits.
  for (auto &L : Loops) {
    for (BasicBlock *Pred : L->Header->predecessors()) {
      if (!DT.isReachable(Pred) || L->contains(Pred))
        continue;
      L->Entering.push_back(Pred);
    }
    if (L->Entering.size() == 1 &&
        L->Entering.front()->successors().size() == 1)
      L->Preheader = L->Entering.front();

    // Blocks are in RPO, so Exiting and Exits come out in deterministic
    // discovery order (first-seen wins for the deduplicated exit list).
    std::set<BasicBlock *> ExitSet;
    for (BasicBlock *BB : L->Blocks) {
      bool IsExiting = false;
      for (BasicBlock *Succ : BB->successors()) {
        if (!L->contains(Succ)) {
          IsExiting = true;
          if (ExitSet.insert(Succ).second)
            L->Exits.push_back(Succ);
        }
      }
      if (IsExiting)
        L->Exiting.push_back(BB);
    }
  }
}

std::vector<Loop *> LoopInfo::getLoopsInnermostFirst() const {
  std::vector<Loop *> Out;
  // Post-order over the loop forest.
  struct Frame {
    Loop *L;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  for (Loop *Top : TopLevel) {
    Stack.push_back({Top, 0});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (F.Next < F.L->getSubLoops().size()) {
        Stack.push_back({F.L->getSubLoops()[F.Next++], 0});
        continue;
      }
      Out.push_back(F.L);
      Stack.pop_back();
    }
  }
  return Out;
}
