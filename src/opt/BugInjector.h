//===- BugInjector.h - Miscompilation injection for testing -----*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deliberately introduces a semantics-changing mutation into a function.
/// Used by the negative tests: a sound validator must reject every function
/// pair where the "optimized" side was produced by the injector.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_OPT_BUGINJECTOR_H
#define LLVMMD_OPT_BUGINJECTOR_H

#include <cstdint>
#include <string>

namespace llvmmd {

class Function;

/// Mutates \p F with a deterministic pseudo-random miscompile chosen by
/// \p Seed. Returns a description of the mutation, or an empty string if no
/// applicable mutation site was found (e.g. a function with no candidates).
std::string injectBug(Function &F, uint64_t Seed);

} // namespace llvmmd

#endif // LLVMMD_OPT_BUGINJECTOR_H
