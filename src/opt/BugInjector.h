//===- BugInjector.h - Miscompilation injection for testing -----*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deliberately introduces a semantics-changing mutation into a function.
/// Used by the negative tests (a sound validator must reject every function
/// pair where the "optimized" side was produced by the injector) and by the
/// triage subsystem's bug corpus (every injected bug should earn a concrete
/// interpreter witness).
///
/// Mutations come in named families:
///   * `pred-flip`    — invert an icmp predicate
///   * `const-bump`   — add one to a binary operator's constant operand
///   * `operand-swap` — swap the operands of a subtraction
///   * `store-drop`   — delete a store (memory family)
///   * `gep-shift`    — shift a getelementptr index by one element
///                      (memory family)
///   * `branch-swap`  — swap the arms of a conditional branch
///                      (control-flow family)
///   * `fp-reassoc`   — reassociate (a fop b) fop c into a fop (b fop c),
///                      unsound under strict FP semantics
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_OPT_BUGINJECTOR_H
#define LLVMMD_OPT_BUGINJECTOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace llvmmd {

class Function;

/// All mutation family names, in candidate-collection order.
const std::vector<std::string> &getBugFamilies();

/// Mutates \p F with a deterministic pseudo-random miscompile chosen by
/// \p Seed. With a non-empty \p Family, only candidates of that mutation
/// family are considered. Returns a description string that starts with
/// the family name ("gep-shift: ..."), or an empty string if no applicable
/// mutation site was found.
std::string injectBug(Function &F, uint64_t Seed,
                      const std::string &Family = "");

} // namespace llvmmd

#endif // LLVMMD_OPT_BUGINJECTOR_H
