//===- Local.cpp - Local transformation utilities ---------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "opt/Local.h"

#include "analysis/CFG.h"
#include "ir/Folding.h"
#include "ir/Module.h"

#include <set>

using namespace llvmmd;

Constant *llvmmd::constantFoldInstruction(Instruction *I, Context &Ctx) {
  if (I->isBinaryOp()) {
    if (isFloatBinaryOp(I->getOpcode())) {
      const auto *A = dyn_cast<ConstantFP>(I->getOperand(0));
      const auto *B = dyn_cast<ConstantFP>(I->getOperand(1));
      if (!A || !B)
        return nullptr;
      return Ctx.getFloat(
          foldFloatBinary(I->getOpcode(), A->getValue(), B->getValue()));
    }
    const auto *A = dyn_cast<ConstantInt>(I->getOperand(0));
    const auto *B = dyn_cast<ConstantInt>(I->getOperand(1));
    if (!A || !B)
      return nullptr;
    auto R = foldIntBinary(I->getOpcode(), A->getSExtValue(),
                           B->getSExtValue(), A->getBitWidth());
    if (!R)
      return nullptr;
    return Ctx.getInt(I->getType(), *R);
  }
  if (auto *Cmp = dyn_cast<ICmpInst>(I)) {
    const auto *A = dyn_cast<ConstantInt>(Cmp->getLHS());
    const auto *B = dyn_cast<ConstantInt>(Cmp->getRHS());
    if (A && B)
      return Ctx.getBool(foldICmp(Cmp->getPred(), A->getSExtValue(),
                                  B->getSExtValue(), A->getBitWidth()));
    // Null pointer comparisons.
    if (isa<ConstantPointerNull>(Cmp->getLHS()) &&
        isa<ConstantPointerNull>(Cmp->getRHS())) {
      if (Cmp->getPred() == ICmpPred::EQ)
        return Ctx.getTrue();
      if (Cmp->getPred() == ICmpPred::NE)
        return Ctx.getFalse();
    }
    return nullptr;
  }
  if (auto *Cmp = dyn_cast<FCmpInst>(I)) {
    const auto *A = dyn_cast<ConstantFP>(Cmp->getLHS());
    const auto *B = dyn_cast<ConstantFP>(Cmp->getRHS());
    if (!A || !B)
      return nullptr;
    return Ctx.getBool(foldFCmp(Cmp->getPred(), A->getValue(), B->getValue()));
  }
  if (auto *Cast = dyn_cast<CastInst>(I)) {
    const auto *A = dyn_cast<ConstantInt>(Cast->getSrc());
    if (!A)
      return nullptr;
    return Ctx.getInt(I->getType(),
                      foldCast(I->getOpcode(), A->getSExtValue(),
                               A->getBitWidth(),
                               I->getType()->getBitWidth()));
  }
  if (auto *Sel = dyn_cast<SelectInst>(I)) {
    const auto *C = dyn_cast<ConstantInt>(Sel->getCondition());
    if (!C)
      return nullptr;
    Value *Arm = C->isTrue() ? Sel->getTrueValue() : Sel->getFalseValue();
    return dyn_cast<Constant>(Arm) ? cast<Constant>(Arm) : nullptr;
  }
  return nullptr;
}

Value *llvmmd::simplifyInstruction(Instruction *I, Context &Ctx) {
  if (Constant *C = constantFoldInstruction(I, Ctx))
    return C;

  if (I->isBinaryOp() && !isFloatBinaryOp(I->getOpcode())) {
    Value *L = I->getOperand(0);
    Value *R = I->getOperand(1);
    const auto *RC = dyn_cast<ConstantInt>(R);
    const auto *LC = dyn_cast<ConstantInt>(L);
    switch (I->getOpcode()) {
    case Opcode::Add:
      if (RC && RC->isZero())
        return L;
      if (LC && LC->isZero())
        return R;
      break;
    case Opcode::Sub:
      if (RC && RC->isZero())
        return L;
      if (L == R)
        return Ctx.getInt(I->getType(), 0);
      break;
    case Opcode::Mul:
      if (RC && RC->isOne())
        return L;
      if (LC && LC->isOne())
        return R;
      if ((RC && RC->isZero()) || (LC && LC->isZero()))
        return Ctx.getInt(I->getType(), 0);
      break;
    case Opcode::And:
      if (L == R)
        return L;
      if ((RC && RC->isZero()) || (LC && LC->isZero()))
        return Ctx.getInt(I->getType(), 0);
      if (RC && zeroExtend(RC->getSExtValue(), RC->getBitWidth()) ==
                    zeroExtend(-1, RC->getBitWidth()))
        return L;
      break;
    case Opcode::Or:
      if (L == R)
        return L;
      if (RC && RC->isZero())
        return L;
      if (LC && LC->isZero())
        return R;
      break;
    case Opcode::Xor:
      if (L == R)
        return Ctx.getInt(I->getType(), 0);
      if (RC && RC->isZero())
        return L;
      if (LC && LC->isZero())
        return R;
      break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
      if (RC && RC->isZero())
        return L;
      break;
    case Opcode::SDiv:
    case Opcode::UDiv:
      if (RC && RC->isOne())
        return L;
      break;
    default:
      break;
    }
  }

  if (auto *Cmp = dyn_cast<ICmpInst>(I)) {
    if (Cmp->getLHS() == Cmp->getRHS()) {
      switch (Cmp->getPred()) {
      case ICmpPred::EQ:
      case ICmpPred::SLE:
      case ICmpPred::SGE:
      case ICmpPred::ULE:
      case ICmpPred::UGE:
        return Ctx.getTrue();
      case ICmpPred::NE:
      case ICmpPred::SLT:
      case ICmpPred::SGT:
      case ICmpPred::ULT:
      case ICmpPred::UGT:
        return Ctx.getFalse();
      }
    }
  }

  if (auto *Sel = dyn_cast<SelectInst>(I)) {
    if (Sel->getTrueValue() == Sel->getFalseValue())
      return Sel->getTrueValue();
    if (const auto *C = dyn_cast<ConstantInt>(Sel->getCondition()))
      return C->isTrue() ? Sel->getTrueValue() : Sel->getFalseValue();
  }

  if (auto *Phi = dyn_cast<PhiNode>(I)) {
    Value *Common = nullptr;
    for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K) {
      Value *V = Phi->getIncomingValue(K);
      if (V == Phi)
        continue; // self-reference through a back edge
      if (Common && V != Common)
        return nullptr;
      Common = V;
    }
    return Common;
  }

  if (auto *GEP = dyn_cast<GEPInst>(I)) {
    const auto *Idx = dyn_cast<ConstantInt>(GEP->getIndex());
    if (Idx && Idx->isZero())
      return GEP->getBase();
  }

  return nullptr;
}

bool llvmmd::isTriviallyDead(const Instruction *I) {
  if (!I->use_empty())
    return false;
  if (I->isTerminator() || I->getOpcode() == Opcode::Store)
    return false;
  if (const auto *Call = dyn_cast<CallInst>(I))
    return !Call->getCallee()->mayWriteMemory();
  return true;
}

unsigned llvmmd::removeDeadInstructions(Function &F) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F.blocks()) {
      std::vector<Instruction *> Dead;
      for (Instruction *I : *BB)
        if (isTriviallyDead(I))
          Dead.push_back(I);
      for (Instruction *I : Dead) {
        BB->erase(I);
        ++Removed;
        Changed = true;
      }
    }
  }
  return Removed;
}

void llvmmd::removePhiEntriesFor(BasicBlock *BB, BasicBlock *Pred) {
  for (PhiNode *P : BB->phis()) {
    int Idx = P->getBlockIndex(Pred);
    if (Idx >= 0)
      P->removeIncoming(static_cast<unsigned>(Idx));
  }
}

unsigned llvmmd::removeUnreachableBlocks(Function &F) {
  if (F.isDeclaration())
    return 0;
  std::set<BasicBlock *> Reachable;
  for (BasicBlock *BB : reachableBlocks(F))
    Reachable.insert(BB);
  std::vector<BasicBlock *> Dead;
  for (const auto &BB : F.blocks())
    if (!Reachable.count(BB))
      Dead.push_back(BB);
  if (Dead.empty())
    return 0;

  // Remove phi entries in reachable blocks that came from dead blocks.
  for (BasicBlock *BB : Dead)
    for (BasicBlock *Succ : BB->successors())
      if (Reachable.count(Succ))
        removePhiEntriesFor(Succ, BB);

  // Break references out of dead blocks, then delete them.
  for (BasicBlock *BB : Dead)
    for (Instruction *I : *BB)
      I->dropAllReferences();
  for (BasicBlock *BB : Dead) {
    // Any remaining uses of dead instructions must come from other dead
    // blocks (already dropped) or be self-references; replace with undef to
    // be safe against malformed input.
    for (Instruction *I : *BB)
      if (!I->use_empty())
        I->replaceAllUsesWith(
            F.getParent()->getContext().getUndef(I->getType()));
    F.eraseBlock(BB);
  }
  return Dead.size();
}

unsigned llvmmd::foldSingleEntryPhis(Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks()) {
    std::vector<PhiNode *> Phis = BB->phis();
    for (PhiNode *P : Phis) {
      if (P->getNumIncoming() != 1)
        continue;
      P->replaceAllUsesWith(P->getIncomingValue(0));
      BB->erase(P);
      ++N;
    }
  }
  return N;
}
