//===- LoopDeletion.cpp - Dead loop removal ---------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deletes loops that compute nothing observable: no stores or
/// memory-writing calls inside, and every value flowing out of the loop
/// through exit-block phis is loop-invariant. Like the paper (and LLVM 2.x)
/// we work under the assumption that the input terminates: the validator's
/// μ/η rules (7)-(9) are exactly what makes the deleted loop's value graph
/// collapse to its initial values.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Module.h"
#include "opt/Local.h"
#include "opt/LoopUtils.h"

#include <set>

using namespace llvmmd;

namespace {

class LoopDeletionPass : public FunctionPass {
public:
  const char *getName() const override { return "loop-deletion"; }

  bool run(Function &F) override {
    if (F.isDeclaration())
      return false;
    bool Changed = false;
    // Deleting a loop invalidates the analyses; recompute and retry until
    // nothing more can be deleted.
    bool Progress = true;
    while (Progress) {
      Progress = false;
      DominatorTree DT(F);
      LoopInfo LI(F, DT);
      if (LI.isIrreducible())
        return Changed;
      for (Loop *L : LI.getLoopsInnermostFirst()) {
        if (tryDelete(F, *L)) {
          Changed = true;
          Progress = true;
          break; // analyses are stale now
        }
      }
    }
    return Changed;
  }

private:
  bool tryDelete(Function &F, Loop &L) {
    if (!L.getSubLoops().empty())
      return false; // delete innermost first; parents become eligible later
    if (L.getExitBlocks().size() != 1)
      return false;
    BasicBlock *Exit = L.getExitBlocks().front();

    // No observable effects inside.
    for (BasicBlock *BB : L.getBlocks())
      for (const Instruction *I : *BB)
        if (I->hasSideEffects())
          return false;

    // Every outside use must be an exit-block phi whose incoming value is
    // loop-invariant (so the value survives deletion unchanged).
    for (BasicBlock *BB : L.getBlocks()) {
      for (const Instruction *I : *BB) {
        for (const User *U : I->users()) {
          const auto *UI = dyn_cast<Instruction>(U);
          if (!UI || L.contains(UI->getParent()))
            continue;
          return false; // a loop-defined value is observable after the loop
        }
      }
    }
    for (const PhiNode *P : Exit->phis()) {
      for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
        if (!L.contains(P->getIncomingBlock(K)))
          continue;
        if (!isDefinedOutsideLoop(P->getIncomingValue(K), L))
          return false;
      }
    }

    BasicBlock *Preheader = ensurePreheader(F, L);
    if (!Preheader)
      return false;

    // Rewrite exit phis: all loop entries collapse to one preheader entry.
    for (PhiNode *P : Exit->phis()) {
      Value *FromLoop = nullptr;
      for (unsigned K = 0; K < P->getNumIncoming();) {
        if (L.contains(P->getIncomingBlock(K))) {
          assert((!FromLoop || FromLoop == P->getIncomingValue(K)) &&
                 "diverging invariant exit values");
          FromLoop = P->getIncomingValue(K);
          P->removeIncoming(K);
        } else {
          ++K;
        }
      }
      assert(FromLoop && "exit phi had no loop entry");
      P->addIncoming(FromLoop, Preheader);
    }

    // Redirect the preheader to the exit and delete the loop body.
    auto *Br = cast<BranchInst>(Preheader->getTerminator());
    Br->makeUnconditional(Exit);
    std::vector<BasicBlock *> Doomed(L.getBlocks().begin(),
                                     L.getBlocks().end());
    for (BasicBlock *BB : Doomed)
      for (Instruction *I : *BB)
        I->dropAllReferences();
    for (BasicBlock *BB : Doomed) {
      for (Instruction *I : *BB)
        if (!I->use_empty())
          I->replaceAllUsesWith(
              F.getParent()->getContext().getUndef(I->getType()));
      F.eraseBlock(BB);
    }
    return true;
  }
};

} // namespace

namespace llvmmd {
std::unique_ptr<FunctionPass> createLoopDeletionPass() {
  return std::make_unique<LoopDeletionPass>();
}
} // namespace llvmmd
