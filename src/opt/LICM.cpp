//===- LICM.cpp - Loop invariant code motion ---------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hoists loop-invariant, safely-speculatable computations to the loop
/// preheader. Loads hoist when no store or memory-writing call inside the
/// loop may alias them; calls hoist when readnone, or readonly with no
/// writer in the loop — the latter is LLVM's "libc knowledge" (strlen et
/// al.) that the paper identifies as the main source of LICM false alarms
/// (Figure 7) because the validator lacks the matching rules unless its
/// Libc rule set is enabled.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "analysis/AliasAnalysis.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Module.h"
#include "opt/LoopUtils.h"

#include <set>
#include <vector>

using namespace llvmmd;

namespace {

class LICMPass : public FunctionPass {
public:
  const char *getName() const override { return "licm"; }

  bool run(Function &F) override {
    if (F.isDeclaration())
      return false;
    DominatorTree DT(F);
    LoopInfo LI(F, DT);
    if (LI.isIrreducible())
      return false;
    AliasAnalysis AA(F);
    bool Changed = false;
    for (Loop *L : LI.getLoopsInnermostFirst())
      Changed |= processLoop(F, *L, AA);
    return Changed;
  }

private:
  bool processLoop(Function &F, Loop &L, const AliasAnalysis &AA) {
    BasicBlock *Preheader = ensurePreheader(F, L);
    if (!Preheader)
      return false;

    // Collect the loop's memory writers once.
    std::vector<const StoreInst *> Stores;
    bool HasWriterCall = false;
    for (BasicBlock *BB : L.getBlocks()) {
      for (const Instruction *I : *BB) {
        if (const auto *St = dyn_cast<StoreInst>(I))
          Stores.push_back(St);
        else if (const auto *Call = dyn_cast<CallInst>(I))
          if (Call->getCallee()->mayWriteMemory())
            HasWriterCall = true;
      }
    }

    std::set<const Instruction *> Hoisted;
    auto IsInvariantOperand = [&](const Value *V) {
      if (isDefinedOutsideLoop(V, L))
        return true;
      const auto *I = dyn_cast<Instruction>(V);
      return I && Hoisted.count(I) != 0;
    };

    bool Changed = false;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (BasicBlock *BB : L.getBlocks()) {
        std::vector<Instruction *> Insts(BB->begin(), BB->end());
        for (Instruction *I : Insts) {
          if (Hoisted.count(I))
            continue;
          if (!canHoist(I, L, AA, Stores, HasWriterCall))
            continue;
          bool OperandsInvariant = true;
          for (Value *Op : I->operands())
            if (!IsInvariantOperand(Op)) {
              OperandsInvariant = false;
              break;
            }
          if (!OperandsInvariant)
            continue;
          // Move to the preheader, before its terminator.
          BB->remove(I);
          auto Pos = Preheader->end();
          --Pos; // before the branch
          Preheader->insert(Pos, I);
          Hoisted.insert(I);
          Progress = true;
          Changed = true;
        }
      }
    }
    return Changed;
  }

  bool canHoist(const Instruction *I, const Loop &L, const AliasAnalysis &AA,
                const std::vector<const StoreInst *> &Stores,
                bool HasWriterCall) {
    switch (I->getOpcode()) {
    case Opcode::Phi:
    case Opcode::Br:
    case Opcode::Ret:
    case Opcode::Unreachable:
    case Opcode::Store:
    case Opcode::Alloca:
      return false;
    case Opcode::SDiv:
    case Opcode::UDiv:
    case Opcode::SRem:
    case Opcode::URem: {
      // Speculation safety: only with a provably nonzero constant divisor.
      const auto *C = dyn_cast<ConstantInt>(I->getOperand(1));
      return C && !C->isZero() &&
             !(C->getSExtValue() == -1); // avoid INT_MIN/-1 as well
    }
    case Opcode::Load: {
      if (HasWriterCall)
        return false;
      const auto *Ld = cast<LoadInst>(I);
      unsigned Size = Ld->getType()->getStoreSize();
      for (const StoreInst *St : Stores) {
        if (AA.alias(St->getPointer(),
                     St->getStoredValue()->getType()->getStoreSize(),
                     Ld->getPointer(), Size) != AliasResult::NoAlias)
          return false;
      }
      (void)L;
      return true;
    }
    case Opcode::Call: {
      const auto *Call = cast<CallInst>(I);
      const Function *Callee = Call->getCallee();
      if (Callee->isReadNone())
        return true;
      // Readonly calls (strlen...) hoist when nothing the loop writes can
      // alias any pointer the callee might read through — LLVM's libc
      // knowledge, and the paper's main LICM false-alarm source.
      if (Callee->isReadOnly()) {
        if (HasWriterCall)
          return false;
        for (unsigned A = 0, E = Call->getNumArgs(); A != E; ++A) {
          const Value *Arg = Call->getArg(A);
          if (!Arg->getType()->isPointer())
            continue;
          for (const StoreInst *St : Stores)
            if (AA.alias(St->getPointer(),
                         St->getStoredValue()->getType()->getStoreSize(),
                         Arg, 4096) != AliasResult::NoAlias)
              return false;
        }
        return true;
      }
      return false;
    }
    default:
      return true; // pure arithmetic, comparisons, casts, selects, GEPs
    }
  }
};

} // namespace

namespace llvmmd {
std::unique_ptr<FunctionPass> createLICMPass() {
  return std::make_unique<LICMPass>();
}
} // namespace llvmmd
