//===- LoopUnswitch.cpp - Loop unswitching -----------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hoists a loop-invariant conditional out of a loop by duplicating the
/// loop: the preheader branches on the invariant condition to a "true"
/// version (branch folded to its true side) or a "false" version. The
/// validator sees two different loop structures whose value graphs must be
/// reconciled by distributing γ over μ/η — the Commuting rule set.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Cloning.h"
#include "ir/Module.h"
#include "opt/Local.h"
#include "opt/LoopUtils.h"

#include <map>
#include <set>

using namespace llvmmd;

namespace {

class LoopUnswitchPass : public FunctionPass {
public:
  const char *getName() const override { return "loop-unswitch"; }

  bool run(Function &F) override {
    if (F.isDeclaration())
      return false;
    bool Changed = false;
    // Unswitch at most a few times per function to bound code growth
    // (LLVM uses a size threshold; we use a count).
    for (unsigned Round = 0; Round < 2; ++Round) {
      DominatorTree DT(F);
      LoopInfo LI(F, DT);
      if (LI.isIrreducible())
        return Changed;
      bool Did = false;
      for (Loop *L : LI.getLoopsInnermostFirst()) {
        if (tryUnswitch(F, *L)) {
          Changed = true;
          Did = true;
          break; // analyses stale
        }
      }
      if (!Did)
        break;
    }
    return Changed;
  }

private:
  BranchInst *findInvariantBranch(Loop &L) {
    for (BasicBlock *BB : L.getBlocks()) {
      auto *Br = dyn_cast_or_null<BranchInst>(BB->getTerminator());
      if (!Br || !Br->isConditional())
        continue;
      if (!isDefinedOutsideLoop(Br->getCondition(), L))
        continue;
      // Interior branch only: both successors stay in the loop.
      if (!L.contains(Br->getSuccessor(0)) || !L.contains(Br->getSuccessor(1)))
        continue;
      if (Br->getSuccessor(0) == Br->getSuccessor(1))
        continue;
      return Br;
    }
    return nullptr;
  }

  /// Rewrites uses of loop-defined values outside \p L to go through φs in
  /// the unique exit block. Returns false when the loop has several exit
  /// blocks or a value does not dominate the exit (we stay conservative).
  bool promoteExitUsesToPhis(Function &F, Loop &L) {
    if (L.getExitBlocks().size() != 1)
      return false;
    BasicBlock *Exit = L.getExitBlocks().front();
    // The rewrite is only straightforward when every exiting edge comes
    // from a block where the value is in scope; with a single exiting
    // block that is simply "defined before the exit branch".
    if (L.getExitingBlocks().size() != 1)
      return false;
    BasicBlock *Exiting = L.getExitingBlocks().front();
    if (Exit->predecessors().size() != 1)
      return false; // a φ here would need entries for unrelated edges
    DominatorTree DT(F);

    for (BasicBlock *BB : L.getBlocks()) {
      for (Instruction *I : *BB) {
        // Gather outside uses that are not already exit phis.
        std::vector<Instruction *> OutsideUsers;
        for (User *U : I->users()) {
          auto *UI = dyn_cast<Instruction>(U);
          if (!UI || L.contains(UI->getParent()))
            continue;
          if (auto *P = dyn_cast<PhiNode>(UI))
            if (P->getParent() == Exit)
              continue;
          OutsideUsers.push_back(UI);
        }
        if (OutsideUsers.empty())
          continue;
        if (!DT.dominates(BB, Exiting))
          return false;
        auto *P = I->getFunction()->bodyArena().create<PhiNode>(I->getType());
        P->setName(I->getName() + ".lcssa");
        Exit->insert(Exit->begin(), P);
        P->addIncoming(I, Exiting);
        for (Instruction *UI : OutsideUsers)
          UI->replaceUsesOfWith(I, P);
      }
    }
    return true;
  }

  bool tryUnswitch(Function &F, Loop &L) {
    // Bound duplication cost.
    size_t LoopSize = 0;
    for (BasicBlock *BB : L.getBlocks())
      LoopSize += BB->size();
    if (LoopSize > 512)
      return false;

    BranchInst *Br = findInvariantBranch(L);
    if (!Br)
      return false;
    if (!loopValuesEscapeOnlyViaExitPhis(L)) {
      // Try to reroute direct outside uses through exit-block φs (a
      // single-exit mini-LCSSA), which makes the duplication patchable.
      if (!promoteExitUsesToPhis(F, L))
        return false;
    }
    BasicBlock *Preheader = ensurePreheader(F, L);
    if (!Preheader)
      return false;

    // Clone the loop body.
    std::vector<BasicBlock *> Body(L.getBlocks().begin(), L.getBlocks().end());
    std::map<const Value *, Value *> VMap;
    std::map<const BasicBlock *, BasicBlock *> BMap;
    cloneBlocks(F, Body, VMap, BMap, ".us");

    // Patch exit-block phis: each loop entry gains a twin from the clone.
    for (BasicBlock *Exit : L.getExitBlocks()) {
      for (PhiNode *P : Exit->phis()) {
        unsigned OrigN = P->getNumIncoming();
        for (unsigned K = 0; K < OrigN; ++K) {
          BasicBlock *In = P->getIncomingBlock(K);
          if (!L.contains(In))
            continue;
          Value *V = P->getIncomingValue(K);
          auto VIt = VMap.find(V);
          Value *ClonedV = VIt == VMap.end() ? V : VIt->second;
          P->addIncoming(ClonedV, BMap.at(In));
        }
      }
    }

    // Original keeps the true side; the clone keeps the false side.
    Value *Cond = Br->getCondition();
    auto *ClonedBr = cast<BranchInst>(VMap.at(Br));
    BasicBlock *TrueBB = Br->getSuccessor(0);
    BasicBlock *FalseBB = Br->getSuccessor(1);
    removePhiEntriesFor(FalseBB, Br->getParent());
    Br->makeUnconditional(TrueBB);
    BasicBlock *ClonedTrue = ClonedBr->getSuccessor(0);
    removePhiEntriesFor(ClonedTrue, ClonedBr->getParent());
    ClonedBr->makeUnconditional(ClonedBr->getSuccessor(1));

    // The preheader now dispatches on the invariant condition.
    BasicBlock *Header = L.getHeader();
    auto *ClonedHeader = BMap.at(Header);
    auto *PreBr = cast<BranchInst>(Preheader->getTerminator());
    Preheader->erase(PreBr);
    Preheader->append(F.bodyArena().create<BranchInst>(
        Cond, Header, ClonedHeader,
        F.getParent()->getContext().getVoidTy()));
    return true;
  }
};

} // namespace

namespace llvmmd {
std::unique_ptr<FunctionPass> createLoopUnswitchPass() {
  return std::make_unique<LoopUnswitchPass>();
}
} // namespace llvmmd
