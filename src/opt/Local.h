//===- Local.h - Local transformation utilities -----------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the optimizer passes: per-instruction constant
/// folding, algebraic simplification, trivial dead-code removal, and CFG
/// cleanup primitives.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_OPT_LOCAL_H
#define LLVMMD_OPT_LOCAL_H

namespace llvmmd {

class BasicBlock;
class Constant;
class Context;
class Function;
class Instruction;
class Value;

/// Folds \p I if all of its relevant operands are constants. Returns the
/// folded constant, or null. Never folds operations whose folding would hide
/// a runtime error (division by zero etc.).
Constant *constantFoldInstruction(Instruction *I, Context &Ctx);

/// Algebraic identity simplification (x+0, x*1, x*0, x-x, x^x, a&a, a|a,
/// icmp x x, select with equal arms / constant condition, ...). Returns the
/// simpler existing value, or null.
Value *simplifyInstruction(Instruction *I, Context &Ctx);

/// True if \p I can be erased when its result is unused.
bool isTriviallyDead(const Instruction *I);

/// Erases trivially dead instructions (transitively) in \p F; returns the
/// number erased.
unsigned removeDeadInstructions(Function &F);

/// Deletes blocks unreachable from entry, dropping phi entries for removed
/// predecessors. Returns the number of blocks deleted.
unsigned removeUnreachableBlocks(Function &F);

/// Removes the entry of \p BB's phis for predecessor \p Pred (used when an
/// edge is deleted).
void removePhiEntriesFor(BasicBlock *BB, BasicBlock *Pred);

/// Replaces single-entry phis by their value; returns number replaced.
unsigned foldSingleEntryPhis(Function &F);

} // namespace llvmmd

#endif // LLVMMD_OPT_LOCAL_H
