//===- InstCombine.cpp - Peephole canonicalization ---------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction-level canonicalizations oriented exactly like LLVM's (and
/// hence like the validator's Canonicalize rule set): a+a ↓ shl a 1,
/// mul by a power of two ↓ shl, add of a negative constant ↓ sub,
/// constants to the right of commutative operators and comparisons. The
/// paper excludes instcombine from its evaluated pipeline ("conceptually
/// simple to validate but requires many rules"); we ship it as the
/// extension experiment.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "ir/Module.h"
#include "opt/Local.h"

#include <vector>

using namespace llvmmd;

namespace {

class InstCombinePass : public FunctionPass {
public:
  const char *getName() const override { return "instcombine"; }

  bool run(Function &F) override {
    if (F.isDeclaration())
      return false;
    Context &Ctx = F.getParent()->getContext();
    bool Changed = false;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (const auto &BB : F.blocks()) {
        std::vector<Instruction *> Insts(BB->begin(), BB->end());
        for (Instruction *I : Insts) {
          if (Value *Simpl = simplifyInstruction(I, Ctx)) {
            I->replaceAllUsesWith(Simpl);
            BB->erase(I);
            Progress = true;
            continue;
          }
          if (Instruction *New = combine(I, Ctx)) {
            BB->insert(findPos(BB, I), New);
            New->setName(I->getName());
            I->replaceAllUsesWith(New);
            BB->erase(I);
            Progress = true;
            continue;
          }
          Progress |= canonicalizeInPlace(I, Ctx);
        }
      }
      Changed |= Progress;
    }
    Changed |= removeDeadInstructions(F) > 0;
    return Changed;
  }

private:
  BasicBlock::iterator findPos(BasicBlock *BB, Instruction *I) {
    for (auto It = BB->begin(), E = BB->end(); It != E; ++It)
      if (*It == I)
        return It;
    return BB->end();
  }

  /// Rewrites that build a replacement instruction.
  Instruction *combine(Instruction *I, Context &Ctx) {
    if (!I->isBinaryOp())
      return nullptr;
    Value *L = I->getOperand(0);
    Value *R = I->getOperand(1);
    const auto *RC = dyn_cast<ConstantInt>(R);
    switch (I->getOpcode()) {
    case Opcode::Add:
      // a + a  ==>  shl a, 1   (LLVM prefers the shift; paper §4)
      if (L == R)
        return I->getFunction()->bodyArena().create<BinaryOperator>(
            Opcode::Shl, L, Ctx.getInt(I->getType(), 1));
      // a + (-k)  ==>  a - k
      if (RC && RC->getSExtValue() < 0 &&
          RC->getSExtValue() != signExtend(int64_t(1) << (RC->getBitWidth() - 1),
                                           RC->getBitWidth()))
        return I->getFunction()->bodyArena().create<BinaryOperator>(
            Opcode::Sub, L, Ctx.getInt(I->getType(), -RC->getSExtValue()));
      return nullptr;
    case Opcode::Mul:
      // a * 2^k  ==>  shl a, k
      if (RC && RC->isPowerOf2()) {
        uint64_t V = RC->getZExtValue();
        unsigned K = 0;
        while ((uint64_t(1) << K) != V)
          ++K;
        return I->getFunction()->bodyArena().create<BinaryOperator>(
            Opcode::Shl, L, Ctx.getInt(I->getType(), K));
      }
      return nullptr;
    default:
      return nullptr;
    }
  }

  /// Rewrites that mutate the instruction in place (operand/pred swaps).
  bool canonicalizeInPlace(Instruction *I, Context &Ctx) {
    (void)Ctx;
    // Commutative op with constant on the left: move it right.
    if (I->isBinaryOp() && isCommutativeOp(I->getOpcode())) {
      if (isa<ConstantInt, ConstantFP>(I->getOperand(0)) &&
          !isa<ConstantInt, ConstantFP>(I->getOperand(1))) {
        Value *L = I->getOperand(0);
        Value *R = I->getOperand(1);
        I->setOperand(0, R);
        I->setOperand(1, L);
        return true;
      }
    }
    // icmp with constant on the left: swap operands and predicate
    // (gt 10 a ↓ lt a 10 — paper §4).
    if (auto *Cmp = dyn_cast<ICmpInst>(I)) {
      if (isa<ConstantInt>(Cmp->getLHS()) &&
          !isa<ConstantInt>(Cmp->getRHS())) {
        Value *L = Cmp->getLHS();
        Value *R = Cmp->getRHS();
        Cmp->setOperand(0, R);
        Cmp->setOperand(1, L);
        Cmp->setPred(swapPred(Cmp->getPred()));
        return true;
      }
    }
    return false;
  }
};

} // namespace

namespace llvmmd {
std::unique_ptr<FunctionPass> createInstCombinePass() {
  return std::make_unique<InstCombinePass>();
}
} // namespace llvmmd
