//===- LoopUtils.cpp - Shared loop transformation helpers -------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "opt/LoopUtils.h"

#include "analysis/LoopInfo.h"
#include "ir/Module.h"

using namespace llvmmd;

BasicBlock *llvmmd::ensurePreheader(Function &F, Loop &L) {
  if (BasicBlock *P = L.getPreheader())
    return P;
  const std::vector<BasicBlock *> &Entering = L.getEntering();
  if (Entering.empty())
    return nullptr;

  Context &Ctx = F.getParent()->getContext();
  BasicBlock *Header = L.getHeader();
  BasicBlock *Pre = F.createBlock(Header->getName() + ".preheader");

  // Header phis: merge the entering entries into the preheader.
  for (PhiNode *P : Header->phis()) {
    Value *Merged = nullptr;
    if (Entering.size() == 1) {
      Merged = P->getIncomingValueForBlock(Entering.front());
    } else {
      auto *NewPhi = F.bodyArena().create<PhiNode>(P->getType());
      NewPhi->setName(P->getName() + ".ph");
      for (BasicBlock *E : Entering)
        NewPhi->addIncoming(P->getIncomingValueForBlock(E), E);
      Pre->append(NewPhi);
      Merged = NewPhi;
    }
    // Drop old entering entries; add the single preheader entry.
    for (BasicBlock *E : Entering) {
      int Idx = P->getBlockIndex(E);
      assert(Idx >= 0 && "entering block not in phi");
      P->removeIncoming(static_cast<unsigned>(Idx));
    }
    P->addIncoming(Merged, Pre);
  }

  Pre->append(F.bodyArena().create<BranchInst>(Header, Ctx.getVoidTy()));

  // Redirect entering edges.
  for (BasicBlock *E : Entering) {
    auto *Br = cast<BranchInst>(E->getTerminator());
    for (unsigned I = 0, NumSuccs = Br->getNumSuccessors(); I != NumSuccs; ++I)
      if (Br->getSuccessor(I) == Header)
        Br->setSuccessor(I, Pre);
  }

  // The preheader lives in every loop enclosing L (but not in L itself).
  if (Loop *Parent = L.getParent())
    Parent->addBlock(Pre);
  return Pre;
}

bool llvmmd::isDefinedOutsideLoop(const Value *V, const Loop &L) {
  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return true;
  return !L.contains(I->getParent());
}

bool llvmmd::loopValuesEscapeOnlyViaExitPhis(const Loop &L) {
  for (BasicBlock *BB : L.getBlocks()) {
    for (const Instruction *I : *BB) {
      for (const User *U : I->users()) {
        const auto *UI = dyn_cast<Instruction>(U);
        if (!UI)
          return false;
        if (L.contains(UI->getParent()))
          continue;
        const auto *P = dyn_cast<PhiNode>(UI);
        if (!P)
          return false;
        bool InExit = false;
        for (BasicBlock *Exit : L.getExitBlocks())
          if (P->getParent() == Exit)
            InExit = true;
        if (!InExit)
          return false;
      }
    }
  }
  return true;
}
