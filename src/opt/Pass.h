//===- Pass.h - Function pass interface and pass manager --------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizer driver: function passes, a sequential pass manager, and a
/// registry that builds the paper's pipeline from a comma-separated string
/// ("adce,gvn,sccp,licm,loop-deletion,loop-unswitch,dse").
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_OPT_PASS_H
#define LLVMMD_OPT_PASS_H

#include <memory>
#include <string>
#include <vector>

namespace llvmmd {

class Function;
class Module;

/// A transformation over one function.
class FunctionPass {
public:
  virtual ~FunctionPass() = default;

  virtual const char *getName() const = 0;

  /// Transforms \p F in place; returns true iff something changed.
  virtual bool run(Function &F) = 0;
};

/// Creates a pass by its pipeline name; null for unknown names. Known:
/// adce, gvn, sccp, licm, loop-deletion, loop-unswitch, dse, instcombine,
/// simplifycfg.
std::unique_ptr<FunctionPass> createPass(const std::string &Name);

/// True iff \p Name is in the createPass registry, without constructing
/// the pass.
bool isRegisteredPassName(const std::string &Name);

/// Runs passes in order over every defined function of a module.
class PassManager {
public:
  /// Parses a comma-separated pipeline; returns false on an unknown pass
  /// name (and leaves the manager unchanged).
  bool parsePipeline(const std::string &Pipeline);

  void addPass(std::unique_ptr<FunctionPass> P) {
    Passes.push_back(std::move(P));
  }

  size_t size() const { return Passes.size(); }

  /// Builds an independent pipeline of the same passes through the registry,
  /// or null if any pass is not registry-constructible (a caller-assembled
  /// pass whose name createPass does not know). The validation engine clones
  /// the pipeline per optimizer task: passes carry per-run scratch state and
  /// change counters, so one PassManager must never run on two threads.
  std::unique_ptr<PassManager> clone() const;

  /// True iff clone() would succeed — every pass name is in the registry.
  /// Cheap: no pass objects are constructed.
  bool isClonable() const;

  /// Runs the pipeline on one function; returns true iff any pass changed it.
  bool run(Function &F);

  /// Runs the pipeline on every defined function.
  bool run(Module &M);

  /// Per-pass change counts from the last run(Module&): how many functions
  /// each pass reported transforming. Used by the per-optimization figures.
  const std::vector<unsigned> &getChangeCounts() const { return ChangeCounts; }

  const std::vector<std::unique_ptr<FunctionPass>> &passes() const {
    return Passes;
  }

private:
  std::vector<std::unique_ptr<FunctionPass>> Passes;
  std::vector<unsigned> ChangeCounts;
};

/// The paper's evaluation pipeline (§5.1).
inline const char *getPaperPipeline() {
  return "adce,gvn,sccp,licm,loop-deletion,loop-unswitch,dse";
}

} // namespace llvmmd

#endif // LLVMMD_OPT_PASS_H
