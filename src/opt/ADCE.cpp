//===- ADCE.cpp - Aggressive dead code elimination --------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Liveness-seeded dead code elimination: only instructions transitively
/// required by side effects, returns or control flow survive. Subsumes
/// plain DCE and dead-instruction elimination, as in the paper's pipeline.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "ir/Module.h"

#include <set>
#include <vector>

using namespace llvmmd;

namespace {

class ADCEPass : public FunctionPass {
public:
  const char *getName() const override { return "adce"; }

  bool run(Function &F) override {
    if (F.isDeclaration())
      return false;

    std::set<Instruction *> Live;
    std::vector<Instruction *> Worklist;
    auto MarkLive = [&](Instruction *I) {
      if (Live.insert(I).second)
        Worklist.push_back(I);
    };

    // Roots: terminators, stores, calls that may write memory.
    for (const auto &BB : F.blocks())
      for (Instruction *I : *BB)
        if (I->isTerminator() || I->hasSideEffects())
          MarkLive(I);

    while (!Worklist.empty()) {
      Instruction *I = Worklist.back();
      Worklist.pop_back();
      for (Value *Op : I->operands())
        if (auto *OpI = dyn_cast<Instruction>(Op))
          MarkLive(OpI);
    }

    // Delete everything not live. Break references first so mutually-dead
    // cycles (phis through back edges) can be removed.
    std::vector<std::pair<BasicBlock *, Instruction *>> Dead;
    for (const auto &BB : F.blocks())
      for (Instruction *I : *BB)
        if (!Live.count(I))
          Dead.push_back({BB, I});
    if (Dead.empty())
      return false;
    for (auto &[BB, I] : Dead)
      I->dropAllReferences();
    for (auto &[BB, I] : Dead) {
      assert(I->use_empty() && "dead instruction still used by live code");
      // Unlink only: the body arena reclaims the storage at dropBody.
      BB->remove(I);
    }
    return true;
  }
};

} // namespace

namespace llvmmd {
std::unique_ptr<FunctionPass> createADCEPass() {
  return std::make_unique<ADCEPass>();
}
} // namespace llvmmd
