//===- LoopUtils.h - Shared loop transformation helpers ---------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Preheader insertion and loop-shape queries shared by LICM, loop deletion
/// and loop unswitching.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_OPT_LOOPUTILS_H
#define LLVMMD_OPT_LOOPUTILS_H

namespace llvmmd {

class BasicBlock;
class Function;
class Loop;
class Value;

/// Ensures \p L has a dedicated preheader: a block whose single successor is
/// the header and which receives every loop-entering edge. Creates one
/// (updating header phis) if needed. Returns the preheader, or null if the
/// loop has no entering edges (dead loop).
BasicBlock *ensurePreheader(Function &F, Loop &L);

/// True if \p V is defined outside \p L (constants, arguments, globals, and
/// instructions in non-loop blocks).
bool isDefinedOutsideLoop(const Value *V, const Loop &L);

/// True if no instruction inside \p L is used by an instruction outside it,
/// except as incoming values of phis located in exit blocks (which loop
/// transformations know how to patch).
bool loopValuesEscapeOnlyViaExitPhis(const Loop &L);

} // namespace llvmmd

#endif // LLVMMD_OPT_LOOPUTILS_H
