//===- BugInjector.cpp - Miscompilation injection for testing ---------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "opt/BugInjector.h"

#include "ir/Module.h"
#include "support/Hashing.h"

#include <vector>

using namespace llvmmd;

namespace {

/// A candidate mutation with an applier.
struct Mutation {
  std::string Desc;
  Instruction *Target;
  int Kind; // 0: flip pred, 1: bump const, 2: swap sub ops, 3: drop store,
            // 4: swap branch successors
};

} // namespace

std::string llvmmd::injectBug(Function &F, uint64_t Seed) {
  if (F.isDeclaration())
    return "";
  Context &Ctx = F.getParent()->getContext();
  std::vector<Mutation> Candidates;
  for (const auto &BB : F.blocks()) {
    for (Instruction *I : *BB) {
      if (isa<ICmpInst>(I))
        Candidates.push_back({"flip predicate of " + I->getName(), I, 0});
      if (I->isBinaryOp() && isa<ConstantInt>(I->getOperand(1)))
        Candidates.push_back({"bump constant in " + I->getName(), I, 1});
      if (I->getOpcode() == Opcode::Sub &&
          I->getOperand(0) != I->getOperand(1))
        Candidates.push_back({"swap sub operands of " + I->getName(), I, 2});
      if (isa<StoreInst>(I))
        Candidates.push_back({"drop a store", I, 3});
      if (auto *Br = dyn_cast<BranchInst>(I))
        if (Br->isConditional())
          Candidates.push_back({"swap branch successors", I, 4});
    }
  }
  if (Candidates.empty())
    return "";
  SplitMixRng Rng(Seed);
  Mutation &M = Candidates[Rng.below(Candidates.size())];
  switch (M.Kind) {
  case 0: {
    auto *Cmp = cast<ICmpInst>(M.Target);
    Cmp->setPred(invertPred(Cmp->getPred()));
    break;
  }
  case 1: {
    const auto *C = cast<ConstantInt>(M.Target->getOperand(1));
    M.Target->setOperand(
        1, Ctx.getInt(C->getType(), C->getSExtValue() + 1));
    break;
  }
  case 2: {
    Value *L = M.Target->getOperand(0);
    Value *R = M.Target->getOperand(1);
    M.Target->setOperand(0, R);
    M.Target->setOperand(1, L);
    break;
  }
  case 3:
    M.Target->getParent()->erase(M.Target);
    break;
  case 4: {
    auto *Br = cast<BranchInst>(M.Target);
    BasicBlock *T = Br->getSuccessor(0);
    Br->setSuccessor(0, Br->getSuccessor(1));
    Br->setSuccessor(1, T);
    break;
  }
  default:
    break;
  }
  return M.Desc;
}
