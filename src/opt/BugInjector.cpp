//===- BugInjector.cpp - Miscompilation injection for testing ---------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "opt/BugInjector.h"

#include "ir/Module.h"
#include "support/Hashing.h"

#include <vector>

using namespace llvmmd;

namespace {

enum MutationKind : int {
  MK_PredFlip = 0,
  MK_ConstBump,
  MK_OperandSwap,
  MK_StoreDrop,
  MK_BranchSwap,
  MK_GepShift,
  MK_FpReassoc,
};

const char *familyName(int Kind) {
  switch (Kind) {
  case MK_PredFlip:
    return "pred-flip";
  case MK_ConstBump:
    return "const-bump";
  case MK_OperandSwap:
    return "operand-swap";
  case MK_StoreDrop:
    return "store-drop";
  case MK_BranchSwap:
    return "branch-swap";
  case MK_GepShift:
    return "gep-shift";
  case MK_FpReassoc:
    return "fp-reassoc";
  }
  return "?";
}

/// A candidate mutation with an applier.
struct Mutation {
  std::string Desc;
  Instruction *Target;
  int Kind;
};

} // namespace

const std::vector<std::string> &llvmmd::getBugFamilies() {
  static const std::vector<std::string> Families = {
      "pred-flip",   "const-bump", "operand-swap", "store-drop",
      "branch-swap", "gep-shift",  "fp-reassoc",
  };
  return Families;
}

std::string llvmmd::injectBug(Function &F, uint64_t Seed,
                              const std::string &Family) {
  if (F.isDeclaration())
    return "";
  Context &Ctx = F.getParent()->getContext();
  std::vector<Mutation> Candidates;
  auto Consider = [&](int Kind, const std::string &Detail, Instruction *I) {
    if (!Family.empty() && Family != familyName(Kind))
      return;
    Candidates.push_back({std::string(familyName(Kind)) + ": " + Detail, I,
                          Kind});
  };
  for (const auto &BB : F.blocks()) {
    for (Instruction *I : *BB) {
      if (isa<ICmpInst>(I))
        Consider(MK_PredFlip, "flip predicate of " + I->getName(), I);
      if (I->isBinaryOp() && isa<ConstantInt>(I->getOperand(1)))
        Consider(MK_ConstBump, "bump constant in " + I->getName(), I);
      if (I->getOpcode() == Opcode::Sub &&
          I->getOperand(0) != I->getOperand(1))
        Consider(MK_OperandSwap, "swap sub operands of " + I->getName(), I);
      if (isa<StoreInst>(I))
        Consider(MK_StoreDrop, "drop a store", I);
      if (auto *Br = dyn_cast<BranchInst>(I))
        if (Br->isConditional() && Br->getSuccessor(0) != Br->getSuccessor(1))
          Consider(MK_BranchSwap, "swap branch successors", I);
      if (isa<GEPInst>(I))
        Consider(MK_GepShift, "shift GEP index of " + I->getName(), I);
      if (I->isBinaryOp() && isFloatBinaryOp(I->getOpcode()) &&
          isCommutativeOp(I->getOpcode()))
        if (auto *L = dyn_cast<BinaryOperator>(I->getOperand(0)))
          if (L->getOpcode() == I->getOpcode())
            Consider(MK_FpReassoc, "reassociate " + I->getName(), I);
    }
  }
  if (Candidates.empty())
    return "";
  SplitMixRng Rng(Seed);
  Mutation &M = Candidates[Rng.below(Candidates.size())];
  switch (M.Kind) {
  case MK_PredFlip: {
    auto *Cmp = cast<ICmpInst>(M.Target);
    Cmp->setPred(invertPred(Cmp->getPred()));
    break;
  }
  case MK_ConstBump: {
    const auto *C = cast<ConstantInt>(M.Target->getOperand(1));
    M.Target->setOperand(
        1, Ctx.getInt(C->getType(), C->getSExtValue() + 1));
    break;
  }
  case MK_OperandSwap: {
    Value *L = M.Target->getOperand(0);
    Value *R = M.Target->getOperand(1);
    M.Target->setOperand(0, R);
    M.Target->setOperand(1, L);
    break;
  }
  case MK_StoreDrop:
    M.Target->getParent()->erase(M.Target);
    break;
  case MK_BranchSwap: {
    auto *Br = cast<BranchInst>(M.Target);
    BasicBlock *T = Br->getSuccessor(0);
    Br->setSuccessor(0, Br->getSuccessor(1));
    Br->setSuccessor(1, T);
    break;
  }
  case MK_GepShift: {
    // Shift the address by one element: constant indices are bumped in
    // place, variable indices gain an `add idx, 1` right before the GEP.
    auto *Gep = cast<GEPInst>(M.Target);
    Value *Idx = Gep->getIndex();
    if (const auto *CI = dyn_cast<ConstantInt>(Idx)) {
      Gep->setOperand(1, Ctx.getInt(CI->getType(), CI->getSExtValue() + 1));
    } else {
      auto *Bump = Gep->getFunction()->bodyArena().create<BinaryOperator>(
          Opcode::Add, Idx, Ctx.getInt(Idx->getType(), 1));
      Bump->setName(Gep->getName() + ".shift");
      BasicBlock *BB = Gep->getParent();
      for (auto It = BB->begin(); It != BB->end(); ++It)
        if (*It == Gep) {
          BB->insert(It, Bump);
          break;
        }
      Gep->setOperand(1, Bump);
    }
    break;
  }
  case MK_FpReassoc: {
    // (a op b) op c -> a op (b op c); a semantics change under the strict
    // FP semantics both the interpreter and the validator implement.
    auto *L = cast<BinaryOperator>(M.Target->getOperand(0));
    Value *A = L->getOperand(0);
    Value *B = L->getOperand(1);
    Value *C = M.Target->getOperand(1);
    auto *Right = M.Target->getFunction()->bodyArena().create<BinaryOperator>(
        M.Target->getOpcode(), B, C);
    Right->setName(M.Target->getName() + ".ra");
    BasicBlock *BB = M.Target->getParent();
    for (auto It = BB->begin(); It != BB->end(); ++It)
      if (*It == M.Target) {
        BB->insert(It, Right);
        break;
      }
    M.Target->setOperand(0, A);
    M.Target->setOperand(1, Right);
    break;
  }
  default:
    break;
  }
  return M.Desc;
}
