//===- DSE.cpp - Dead store elimination ---------------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Removes stores that are overwritten before being read (block-local, with
/// alias analysis) and stores into non-escaping allocas that are never
/// loaded. In the value graph these removals correspond exactly to the
/// load/store simplification rules (10)-(11) plus store-over-store
/// collapsing, so DSE validates under the LoadStore rule set.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "analysis/AliasAnalysis.h"
#include "ir/Module.h"

#include <vector>

using namespace llvmmd;

namespace {

class DSEPass : public FunctionPass {
public:
  const char *getName() const override { return "dse"; }

  bool run(Function &F) override {
    if (F.isDeclaration())
      return false;
    AliasAnalysis AA(F);
    bool Changed = false;
    Changed |= removeOverwrittenStores(F, AA);
    Changed |= removeNeverLoadedAllocaStores(F, AA);
    return Changed;
  }

private:
  /// store P; ...no read of P...; store P  ==>  drop the first store.
  bool removeOverwrittenStores(Function &F, const AliasAnalysis &AA) {
    bool Changed = false;
    for (const auto &BB : F.blocks()) {
      std::vector<Instruction *> Insts(BB->begin(), BB->end());
      for (unsigned I = 0; I < Insts.size(); ++I) {
        auto *St = dyn_cast<StoreInst>(Insts[I]);
        if (!St)
          continue;
        unsigned Size = St->getStoredValue()->getType()->getStoreSize();
        for (unsigned J = I + 1; J < Insts.size(); ++J) {
          Instruction *Next = Insts[J];
          if (auto *Ld = dyn_cast<LoadInst>(Next)) {
            if (AA.alias(Ld->getPointer(), Ld->getType()->getStoreSize(),
                         St->getPointer(), Size) != AliasResult::NoAlias)
              break; // read may observe the store
            continue;
          }
          if (auto *Call = dyn_cast<CallInst>(Next)) {
            if (!Call->getCallee()->isReadNone())
              break; // callee may read memory
            continue;
          }
          if (auto *St2 = dyn_cast<StoreInst>(Next)) {
            unsigned Size2 = St2->getStoredValue()->getType()->getStoreSize();
            if (AA.alias(St2->getPointer(), Size2, St->getPointer(), Size) ==
                    AliasResult::MustAlias &&
                Size2 >= Size) {
              BB->erase(St);
              Changed = true;
              break;
            }
            continue;
          }
          // Arithmetic etc. cannot observe memory.
        }
      }
    }
    return Changed;
  }

  /// Stores into a non-escaping alloca that is never loaded from are dead.
  bool removeNeverLoadedAllocaStores(Function &F, const AliasAnalysis &AA) {
    bool Changed = false;
    for (const auto &BB : F.blocks()) {
      for (Instruction *I : *BB) {
        auto *AI = dyn_cast<AllocaInst>(I);
        if (!AI || !AA.isNonEscapingAlloca(AI))
          continue;
        // Any load in the function that may read this alloca?
        bool Loaded = false;
        std::vector<StoreInst *> Stores;
        for (const auto &BB2 : F.blocks()) {
          for (Instruction *I2 : *BB2) {
            if (auto *Ld = dyn_cast<LoadInst>(I2)) {
              if (AA.alias(Ld->getPointer(), AI) != AliasResult::NoAlias)
                Loaded = true;
            } else if (auto *St = dyn_cast<StoreInst>(I2)) {
              if (AA.alias(St->getPointer(), AI) != AliasResult::NoAlias &&
                  St->getStoredValue() != AI)
                Stores.push_back(St);
            }
          }
          if (Loaded)
            break;
        }
        if (Loaded)
          continue;
        for (StoreInst *St : Stores) {
          St->getParent()->erase(St);
          Changed = true;
        }
      }
    }
    return Changed;
  }
};

} // namespace

namespace llvmmd {
std::unique_ptr<FunctionPass> createDSEPass() {
  return std::make_unique<DSEPass>();
}
} // namespace llvmmd
