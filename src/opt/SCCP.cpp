//===- SCCP.cpp - Sparse conditional constant propagation ------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic Wegman-Zadeck sparse conditional constant propagation over
/// the three-level lattice unknown < constant < overdefined, tracking edge
/// executability so constants propagate through branches that are never
/// taken. One of the paper's headline optimizations (Figure 8 ablates the
/// validator rules it needs: constant folding and φ simplification).
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "ir/Folding.h"
#include "ir/Module.h"
#include "opt/Local.h"

#include <map>
#include <set>
#include <vector>

using namespace llvmmd;

namespace {

struct LatticeValue {
  enum class State : uint8_t { Unknown, Const, Overdefined } S = State::Unknown;
  Constant *C = nullptr;

  bool isUnknown() const { return S == State::Unknown; }
  bool isConst() const { return S == State::Const; }
  bool isOverdefined() const { return S == State::Overdefined; }
};

class SCCPSolver {
public:
  explicit SCCPSolver(Function &F)
      : F(F), Ctx(F.getParent()->getContext()) {}

  bool run() {
    if (F.isDeclaration())
      return false;
    markBlockExecutable(F.getEntryBlock());
    solve();
    return rewrite();
  }

private:
  LatticeValue getLattice(Value *V) {
    if (auto *C = dyn_cast<Constant>(V)) {
      // Globals and functions are addresses: constant but not foldable into
      // arithmetic; model as overdefined to keep things simple, except for
      // genuine scalar literals.
      if (isa<ConstantInt>(C) || isa<ConstantFP>(C))
        return {LatticeValue::State::Const, C};
      return {LatticeValue::State::Overdefined, nullptr};
    }
    if (isa<Argument>(V))
      return {LatticeValue::State::Overdefined, nullptr};
    auto It = Values.find(V);
    return It == Values.end() ? LatticeValue() : It->second;
  }

  void markOverdefined(Instruction *I) {
    LatticeValue &LV = Values[I];
    if (LV.isOverdefined())
      return;
    LV.S = LatticeValue::State::Overdefined;
    LV.C = nullptr;
    InstWorklist.push_back(I);
  }

  void markConstant(Instruction *I, Constant *C) {
    LatticeValue &LV = Values[I];
    if (LV.isConst() && LV.C == C)
      return;
    if (LV.isOverdefined())
      return;
    if (LV.isConst() && LV.C != C) {
      markOverdefined(I);
      return;
    }
    LV.S = LatticeValue::State::Const;
    LV.C = C;
    InstWorklist.push_back(I);
  }

  void markBlockExecutable(BasicBlock *BB) {
    if (!ExecutableBlocks.insert(BB).second)
      return;
    BlockWorklist.push_back(BB);
  }

  void markEdgeExecutable(BasicBlock *From, BasicBlock *To) {
    if (!ExecutableEdges.insert({From, To}).second)
      return;
    markBlockExecutable(To);
    // Re-evaluate phis in To: a new edge may add information.
    for (PhiNode *P : To->phis())
      visit(P);
  }

  bool isEdgeExecutable(BasicBlock *From, BasicBlock *To) const {
    return ExecutableEdges.count({From, To}) != 0;
  }

  void solve() {
    while (!BlockWorklist.empty() || !InstWorklist.empty()) {
      while (!BlockWorklist.empty()) {
        BasicBlock *BB = BlockWorklist.back();
        BlockWorklist.pop_back();
        for (Instruction *I : *BB)
          visit(I);
      }
      while (!InstWorklist.empty()) {
        Instruction *I = InstWorklist.back();
        InstWorklist.pop_back();
        for (User *U : I->users())
          if (auto *UI = dyn_cast<Instruction>(U))
            if (ExecutableBlocks.count(UI->getParent()))
              visit(UI);
      }
    }
  }

  void visit(Instruction *I) {
    if (!ExecutableBlocks.count(I->getParent()))
      return;
    switch (I->getOpcode()) {
    case Opcode::Phi:
      visitPhi(cast<PhiNode>(I));
      return;
    case Opcode::Br:
      visitBranch(cast<BranchInst>(I));
      return;
    case Opcode::Ret:
    case Opcode::Unreachable:
    case Opcode::Store:
      return;
    case Opcode::Alloca:
    case Opcode::Load:
    case Opcode::GEP:
    case Opcode::Call:
      markOverdefined(I);
      return;
    default:
      visitFoldable(I);
      return;
    }
  }

  void visitPhi(PhiNode *P) {
    Constant *Common = nullptr;
    bool SawOverdef = false;
    for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
      if (!isEdgeExecutable(P->getIncomingBlock(K), P->getParent()))
        continue;
      LatticeValue LV = getLattice(P->getIncomingValue(K));
      if (LV.isUnknown())
        continue;
      if (LV.isOverdefined()) {
        SawOverdef = true;
        break;
      }
      if (Common && Common != LV.C) {
        SawOverdef = true;
        break;
      }
      Common = LV.C;
    }
    if (SawOverdef)
      markOverdefined(P);
    else if (Common)
      markConstant(P, Common);
  }

  void visitBranch(BranchInst *Br) {
    BasicBlock *BB = Br->getParent();
    if (!Br->isConditional()) {
      markEdgeExecutable(BB, Br->getSuccessor(0));
      return;
    }
    LatticeValue LV = getLattice(Br->getCondition());
    if (LV.isConst()) {
      const auto *C = cast<ConstantInt>(LV.C);
      markEdgeExecutable(BB, Br->getSuccessor(C->isTrue() ? 0 : 1));
      return;
    }
    if (LV.isOverdefined()) {
      markEdgeExecutable(BB, Br->getSuccessor(0));
      markEdgeExecutable(BB, Br->getSuccessor(1));
    }
    // Unknown: wait for more information.
  }

  void visitFoldable(Instruction *I) {
    // Gather operand lattices.
    bool AnyUnknown = false, AnyOverdef = false;
    std::vector<Constant *> Ops;
    for (Value *Op : I->operands()) {
      LatticeValue LV = getLattice(Op);
      if (LV.isUnknown())
        AnyUnknown = true;
      else if (LV.isOverdefined())
        AnyOverdef = true;
      else
        Ops.push_back(LV.C);
    }
    if (AnyUnknown && !AnyOverdef)
      return; // optimistic: wait
    if (AnyOverdef) {
      // Some identities still fold with one overdefined operand (x*0); keep
      // the solver simple and go overdefined, matching a basic SCCP.
      markOverdefined(I);
      return;
    }
    // All operands constant: fold by substituting and folding a detached
    // copy through the shared folding helpers.
    Constant *Folded = foldWithConstants(I, Ops);
    if (Folded)
      markConstant(I, Folded);
    else
      markOverdefined(I);
  }

  Constant *foldWithConstants(Instruction *I, std::vector<Constant *> &Ops) {
    if (I->isBinaryOp()) {
      if (isFloatBinaryOp(I->getOpcode())) {
        auto *A = dyn_cast<ConstantFP>(Ops[0]);
        auto *B = dyn_cast<ConstantFP>(Ops[1]);
        if (!A || !B)
          return nullptr;
        return Ctx.getFloat(
            foldFloatBinary(I->getOpcode(), A->getValue(), B->getValue()));
      }
      auto *A = dyn_cast<ConstantInt>(Ops[0]);
      auto *B = dyn_cast<ConstantInt>(Ops[1]);
      if (!A || !B)
        return nullptr;
      auto R = foldIntBinary(I->getOpcode(), A->getSExtValue(),
                             B->getSExtValue(), A->getBitWidth());
      return R ? Ctx.getInt(I->getType(), *R) : nullptr;
    }
    if (auto *Cmp = dyn_cast<ICmpInst>(I)) {
      auto *A = dyn_cast<ConstantInt>(Ops[0]);
      auto *B = dyn_cast<ConstantInt>(Ops[1]);
      if (!A || !B)
        return nullptr;
      return Ctx.getBool(foldICmp(Cmp->getPred(), A->getSExtValue(),
                                  B->getSExtValue(), A->getBitWidth()));
    }
    if (auto *Cmp = dyn_cast<FCmpInst>(I)) {
      auto *A = dyn_cast<ConstantFP>(Ops[0]);
      auto *B = dyn_cast<ConstantFP>(Ops[1]);
      if (!A || !B)
        return nullptr;
      return Ctx.getBool(
          foldFCmp(Cmp->getPred(), A->getValue(), B->getValue()));
    }
    if (I->isCast()) {
      auto *A = dyn_cast<ConstantInt>(Ops[0]);
      if (!A)
        return nullptr;
      return Ctx.getInt(I->getType(),
                        foldCast(I->getOpcode(), A->getSExtValue(),
                                 A->getBitWidth(),
                                 I->getType()->getBitWidth()));
    }
    if (isa<SelectInst>(I) && Ops.size() == 3) {
      auto *C = dyn_cast<ConstantInt>(Ops[0]);
      if (!C)
        return nullptr;
      return C->isTrue() ? Ops[1] : Ops[2];
    }
    return nullptr;
  }

  /// Applies the solution: replaces constant instructions, folds branches,
  /// deletes unreachable blocks.
  bool rewrite() {
    bool Changed = false;
    for (const auto &BB : F.blocks()) {
      if (!ExecutableBlocks.count(BB))
        continue;
      std::vector<Instruction *> Insts(BB->begin(), BB->end());
      for (Instruction *I : Insts) {
        LatticeValue LV = getLattice(I);
        if (!LV.isConst() || I->getType()->isVoid())
          continue;
        I->replaceAllUsesWith(LV.C);
        BB->erase(I);
        Changed = true;
      }
    }
    // Fold branches along non-executable edges.
    for (const auto &BB : F.blocks()) {
      if (!ExecutableBlocks.count(BB))
        continue;
      auto *Br = dyn_cast_or_null<BranchInst>(BB->getTerminator());
      if (!Br || !Br->isConditional())
        continue;
      bool TrueLive = isEdgeExecutable(BB, Br->getSuccessor(0));
      bool FalseLive = isEdgeExecutable(BB, Br->getSuccessor(1));
      if (TrueLive && FalseLive)
        continue;
      BasicBlock *Live = TrueLive ? Br->getSuccessor(0) : Br->getSuccessor(1);
      BasicBlock *Dead = TrueLive ? Br->getSuccessor(1) : Br->getSuccessor(0);
      if (!TrueLive && !FalseLive)
        continue; // block is dead anyway; unreachable removal handles it
      removePhiEntriesFor(Dead, BB);
      Br->makeUnconditional(Live);
      Changed = true;
    }
    Changed |= removeUnreachableBlocks(F) > 0;
    Changed |= foldSingleEntryPhis(F) > 0;
    Changed |= removeDeadInstructions(F) > 0;
    return Changed;
  }

  Function &F;
  Context &Ctx;
  std::map<Value *, LatticeValue> Values;
  std::set<BasicBlock *> ExecutableBlocks;
  std::set<std::pair<BasicBlock *, BasicBlock *>> ExecutableEdges;
  std::vector<BasicBlock *> BlockWorklist;
  std::vector<Instruction *> InstWorklist;
};

class SCCPPass : public FunctionPass {
public:
  const char *getName() const override { return "sccp"; }
  bool run(Function &F) override { return SCCPSolver(F).run(); }
};

} // namespace

namespace llvmmd {
std::unique_ptr<FunctionPass> createSCCPPass() {
  return std::make_unique<SCCPPass>();
}
} // namespace llvmmd
