//===- GVN.cpp - Global value numbering with alias analysis ----------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator-scoped global value numbering: a preorder walk of the
/// dominator tree with a scoped expression table (commutative operands
/// sorted by value number, comparisons canonicalized by predicate swap),
/// per-instruction simplification/constant folding, redundant-load
/// elimination and store-to-load forwarding through the alias analysis, and
/// same-block φ coalescing. This is the paper's hardest optimization to
/// validate (Figures 5/6): its effects span φ simplification, constant
/// folding, load/store simplification and commuting in the value graph.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "analysis/AliasAnalysis.h"
#include "analysis/Dominators.h"
#include "ir/Module.h"
#include "opt/Local.h"

#include <map>
#include <optional>
#include <vector>

using namespace llvmmd;

namespace {

/// Structural key for pure expressions. Operands are value numbers, making
/// the table stable under replacement and deterministic across runs.
struct ExprKey {
  Opcode Op;
  uint8_t Pred = 0;        // icmp/fcmp predicate
  Type *Ty = nullptr;      // result type
  Type *Extra = nullptr;   // GEP element type
  std::vector<unsigned> Operands;

  bool operator<(const ExprKey &O) const {
    if (Op != O.Op)
      return Op < O.Op;
    if (Pred != O.Pred)
      return Pred < O.Pred;
    if (Ty != O.Ty)
      return Ty < O.Ty;
    if (Extra != O.Extra)
      return Extra < O.Extra;
    return Operands < O.Operands;
  }
};

class GVNPass : public FunctionPass {
public:
  const char *getName() const override { return "gvn"; }

  bool run(Function &F) override {
    if (F.isDeclaration())
      return false;
    Changed = false;
    ValueNumbers.clear();
    NextVN = 0;
    AliasAnalysis AA(F);
    DominatorTree DT(F);

    // Preorder walk with scoped tables implemented as undo logs.
    processBlock(F, DT, AA, DT.getRPO().empty() ? nullptr : DT.getRPO()[0]);
    Changed |= removeDeadInstructions(F) > 0;
    return Changed;
  }

private:
  unsigned getVN(Value *V) {
    auto It = ValueNumbers.find(V);
    if (It != ValueNumbers.end())
      return It->second;
    unsigned VN = NextVN++;
    ValueNumbers[V] = VN;
    return VN;
  }

  std::optional<ExprKey> makeKey(Instruction *I) {
    ExprKey K;
    K.Op = I->getOpcode();
    K.Ty = I->getType();
    if (I->isBinaryOp()) {
      unsigned A = getVN(I->getOperand(0)), B = getVN(I->getOperand(1));
      if (isCommutativeOp(I->getOpcode()) && B < A)
        std::swap(A, B);
      K.Operands = {A, B};
      return K;
    }
    switch (I->getOpcode()) {
    case Opcode::ICmp: {
      auto *Cmp = cast<ICmpInst>(I);
      unsigned A = getVN(Cmp->getLHS()), B = getVN(Cmp->getRHS());
      ICmpPred P = Cmp->getPred();
      // Canonical orientation: smaller VN first; swap predicate to match.
      if (B < A) {
        std::swap(A, B);
        P = swapPred(P);
      }
      K.Pred = static_cast<uint8_t>(P);
      K.Operands = {A, B};
      return K;
    }
    case Opcode::FCmp: {
      auto *Cmp = cast<FCmpInst>(I);
      K.Pred = static_cast<uint8_t>(Cmp->getPred());
      K.Operands = {getVN(Cmp->getLHS()), getVN(Cmp->getRHS())};
      return K;
    }
    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Select:
      for (Value *Op : I->operands())
        K.Operands.push_back(getVN(Op));
      return K;
    case Opcode::GEP: {
      auto *G = cast<GEPInst>(I);
      K.Extra = G->getElementType();
      K.Operands = {getVN(G->getBase()), getVN(G->getIndex())};
      return K;
    }
    case Opcode::Call: {
      auto *C = cast<CallInst>(I);
      // Only calls that neither read nor write memory are pure expressions.
      if (!C->getCallee()->isReadNone())
        return std::nullopt;
      K.Extra = reinterpret_cast<Type *>(C->getCallee());
      for (Value *Op : I->operands())
        K.Operands.push_back(getVN(Op));
      return K;
    }
    default:
      return std::nullopt;
    }
  }

  void replaceAndErase(Instruction *I, Value *Repl) {
    // Keep value numbers coherent: the replacement inherits the number.
    auto It = ValueNumbers.find(I);
    if (It != ValueNumbers.end() && !ValueNumbers.count(Repl))
      ValueNumbers[Repl] = It->second;
    I->replaceAllUsesWith(Repl);
    I->getParent()->erase(I);
    Changed = true;
  }

  /// Folds a load from a constant-qualified global to its initializer.
  /// This mirrors LLVM's "folding of global variables", which the paper
  /// names as a false-alarm source: the validator only matches it when its
  /// GlobalFold extension rule set is enabled.
  Value *foldConstantGlobalLoad(LoadInst *Ld) {
    const auto *GV = dyn_cast<GlobalVariable>(Ld->getPointer());
    if (!GV || !GV->isConstantGlobal() || !GV->hasInitializer())
      return nullptr;
    if (GV->getValueType() != Ld->getType())
      return nullptr;
    return GV->getInitializer();
  }

  /// Searches for an available value for load (Ptr, Ty) starting just above
  /// \p From in its block and walking unique-predecessor chains upward.
  /// Knows that memset fills a region with a byte (libc knowledge, another
  /// of the paper's false-alarm sources).
  Value *findAvailableLoadValue(Instruction *From, Value *Ptr, Type *Ty,
                                const AliasAnalysis &AA) {
    unsigned Budget = 256;
    BasicBlock *BB = From->getParent();
    // Position of From within BB.
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    int Start = -1;
    for (int I = static_cast<int>(Insts.size()) - 1; I >= 0; --I)
      if (Insts[I] == From) {
        Start = I - 1;
        break;
      }
    unsigned Size = Ty->getStoreSize();
    while (true) {
      for (int I = Start; I >= 0 && Budget; --I, --Budget) {
        Instruction *Cand = Insts[I];
        if (auto *St = dyn_cast<StoreInst>(Cand)) {
          AliasResult AR = AA.alias(St->getPointer(),
                                    St->getStoredValue()->getType()->getStoreSize(),
                                    Ptr, Size);
          if (AR == AliasResult::MustAlias &&
              St->getStoredValue()->getType() == Ty)
            return St->getStoredValue();
          if (AR != AliasResult::NoAlias)
            return nullptr; // clobbered by a may-aliasing store
          continue;
        }
        if (auto *Ld = dyn_cast<LoadInst>(Cand)) {
          if (Ld->getType() == Ty &&
              AA.alias(Ld->getPointer(), Size, Ptr, Size) ==
                  AliasResult::MustAlias)
            return Ld;
          continue;
        }
        if (auto *Call = dyn_cast<CallInst>(Cand)) {
          if (Call->getCallee()->getName() == "memset" &&
              Call->getNumArgs() == 3) {
            const auto *Len = dyn_cast<ConstantInt>(Call->getArg(2));
            if (!Len)
              return nullptr;
            int64_t LenV = std::max<int64_t>(0, Len->getSExtValue());
            AliasResult AR = AA.alias(Call->getArg(0),
                                      static_cast<unsigned>(LenV), Ptr, Size);
            if (AR == AliasResult::NoAlias)
              continue; // the fill cannot touch this load
            // A byte load wholly inside the filled range reads the fill
            // value (the paper's memset rule, with l2 < l1).
            const auto *Fill = dyn_cast<ConstantInt>(Call->getArg(1));
            auto DstD = AliasAnalysis::decompose(Call->getArg(0));
            auto PtrD = AliasAnalysis::decompose(Ptr);
            if (Fill && Size == 1 && Ty->isInteger() &&
                DstD.Base == PtrD.Base && DstD.Offset && PtrD.Offset &&
                *PtrD.Offset >= *DstD.Offset &&
                *PtrD.Offset + static_cast<int64_t>(Size) <=
                    *DstD.Offset + LenV)
              return From->getFunction()->getParent()->getContext().getInt(
                  Ty, signExtend(Fill->getSExtValue(), 8));
            return nullptr;
          }
          if (Call->getCallee()->mayWriteMemory())
            return nullptr;
          continue;
        }
      }
      if (!Budget)
        return nullptr;
      std::vector<BasicBlock *> Preds = BB->predecessors();
      if (Preds.size() != 1)
        return nullptr;
      BB = Preds.front();
      Insts.assign(BB->begin(), BB->end());
      Start = static_cast<int>(Insts.size()) - 1;
    }
  }

  void processBlock(Function &F, const DominatorTree &DT,
                    const AliasAnalysis &AA, BasicBlock *Root) {
    if (!Root)
      return;
    struct Frame {
      BasicBlock *BB;
      size_t NextChild = 0;
      size_t UndoMark = 0;
    };
    std::vector<Frame> Stack;
    Stack.push_back({Root, 0, UndoLog.size()});
    visitBlock(F, AA, Root);
    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      const auto &Kids = DT.getChildren(Top.BB);
      if (Top.NextChild < Kids.size()) {
        BasicBlock *Child = Kids[Top.NextChild++];
        Stack.push_back({Child, 0, UndoLog.size()});
        visitBlock(F, AA, Child);
        continue;
      }
      // Unwind scope.
      while (UndoLog.size() > Top.UndoMark) {
        auto &[Key, Prev] = UndoLog.back();
        if (Prev)
          Table[Key] = Prev;
        else
          Table.erase(Key);
        UndoLog.pop_back();
      }
      Stack.pop_back();
    }
  }

  void insertScoped(const ExprKey &K, Value *V) {
    auto It = Table.find(K);
    UndoLog.emplace_back(K, It == Table.end() ? nullptr : It->second);
    Table[K] = V;
  }

  void visitBlock(Function &F, const AliasAnalysis &AA, BasicBlock *BB) {
    Context &Ctx = F.getParent()->getContext();

    // φ coalescing: two φs over identical (block, VN) incoming sets merge.
    std::vector<PhiNode *> Phis = BB->phis();
    std::map<std::vector<std::pair<BasicBlock *, unsigned>>, PhiNode *>
        PhiTable;
    for (PhiNode *P : Phis) {
      if (Value *Simpl = simplifyInstruction(P, Ctx)) {
        replaceAndErase(P, Simpl);
        continue;
      }
      std::vector<std::pair<BasicBlock *, unsigned>> Key;
      for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K)
        Key.emplace_back(P->getIncomingBlock(K),
                         getVN(P->getIncomingValue(K)));
      std::sort(Key.begin(), Key.end());
      auto [It, Inserted] = PhiTable.try_emplace(Key, P);
      if (!Inserted && It->second->getType() == P->getType())
        replaceAndErase(P, It->second);
    }

    std::vector<Instruction *> Insts(BB->getFirstNonPhi(), BB->end());
    for (Instruction *I : Insts) {
      if (Value *Simpl = simplifyInstruction(I, Ctx)) {
        replaceAndErase(I, Simpl);
        continue;
      }
      if (auto *Ld = dyn_cast<LoadInst>(I)) {
        if (Value *Folded = foldConstantGlobalLoad(Ld)) {
          replaceAndErase(Ld, Folded);
          continue;
        }
        if (Value *Avail =
                findAvailableLoadValue(Ld, Ld->getPointer(), Ld->getType(), AA)) {
          replaceAndErase(Ld, Avail);
        }
        continue;
      }
      auto Key = makeKey(I);
      if (!Key)
        continue;
      auto It = Table.find(*Key);
      if (It != Table.end()) {
        replaceAndErase(I, It->second);
        continue;
      }
      insertScoped(*Key, I);
    }
  }

  bool Changed = false;
  std::map<Value *, unsigned> ValueNumbers;
  unsigned NextVN = 0;
  std::map<ExprKey, Value *> Table;
  std::vector<std::pair<ExprKey, Value *>> UndoLog;
};

} // namespace

namespace llvmmd {
std::unique_ptr<FunctionPass> createGVNPass() {
  return std::make_unique<GVNPass>();
}
} // namespace llvmmd
