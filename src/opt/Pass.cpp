//===- Pass.cpp - Pass manager and registry ----------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "ir/Module.h"

#include <sstream>

using namespace llvmmd;

namespace llvmmd {
std::unique_ptr<FunctionPass> createADCEPass();
std::unique_ptr<FunctionPass> createGVNPass();
std::unique_ptr<FunctionPass> createSCCPPass();
std::unique_ptr<FunctionPass> createLICMPass();
std::unique_ptr<FunctionPass> createLoopDeletionPass();
std::unique_ptr<FunctionPass> createLoopUnswitchPass();
std::unique_ptr<FunctionPass> createDSEPass();
std::unique_ptr<FunctionPass> createInstCombinePass();
std::unique_ptr<FunctionPass> createSimplifyCFGPass();
} // namespace llvmmd

namespace {

struct RegistryEntry {
  const char *Name;
  std::unique_ptr<FunctionPass> (*Create)();
};

const RegistryEntry Registry[] = {
    {"adce", createADCEPass},
    {"gvn", createGVNPass},
    {"sccp", createSCCPPass},
    {"licm", createLICMPass},
    {"loop-deletion", createLoopDeletionPass},
    {"loop-unswitch", createLoopUnswitchPass},
    {"dse", createDSEPass},
    {"instcombine", createInstCombinePass},
    {"simplifycfg", createSimplifyCFGPass},
};

} // namespace

std::unique_ptr<FunctionPass> llvmmd::createPass(const std::string &Name) {
  for (const RegistryEntry &E : Registry)
    if (Name == E.Name)
      return E.Create();
  return nullptr;
}

bool llvmmd::isRegisteredPassName(const std::string &Name) {
  for (const RegistryEntry &E : Registry)
    if (Name == E.Name)
      return true;
  return false;
}

bool PassManager::parsePipeline(const std::string &Pipeline) {
  std::vector<std::unique_ptr<FunctionPass>> Parsed;
  std::stringstream SS(Pipeline);
  std::string Name;
  while (std::getline(SS, Name, ',')) {
    if (Name.empty())
      continue;
    auto P = createPass(Name);
    if (!P)
      return false;
    Parsed.push_back(std::move(P));
  }
  for (auto &P : Parsed)
    Passes.push_back(std::move(P));
  return true;
}

bool PassManager::isClonable() const {
  for (const auto &P : Passes)
    if (!isRegisteredPassName(P->getName()))
      return false;
  return true;
}

std::unique_ptr<PassManager> PassManager::clone() const {
  auto PM = std::make_unique<PassManager>();
  for (const auto &P : Passes) {
    auto C = createPass(P->getName());
    if (!C)
      return nullptr;
    PM->addPass(std::move(C));
  }
  return PM;
}

bool PassManager::run(Function &F) {
  bool Changed = false;
  if (ChangeCounts.size() != Passes.size())
    ChangeCounts.assign(Passes.size(), 0);
  for (unsigned I = 0, E = Passes.size(); I != E; ++I) {
    if (Passes[I]->run(F)) {
      ++ChangeCounts[I];
      Changed = true;
    }
  }
  return Changed;
}

bool PassManager::run(Module &M) {
  ChangeCounts.assign(Passes.size(), 0);
  bool Changed = false;
  for (Function *F : M.definedFunctions())
    Changed |= run(*F);
  return Changed;
}
