//===- SimplifyCFG.cpp - CFG cleanup pass ----------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds constant conditional branches, deletes unreachable blocks, merges
/// straight-line block chains, and removes single-entry phis. Used both as
/// a standalone pass and as cleanup inside SCCP and the loop passes.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "ir/Module.h"
#include "opt/Local.h"

using namespace llvmmd;

namespace {

class SimplifyCFGPass : public FunctionPass {
public:
  const char *getName() const override { return "simplifycfg"; }

  bool run(Function &F) override {
    if (F.isDeclaration())
      return false;
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      LocalChange |= foldConstantBranches(F);
      LocalChange |= removeUnreachableBlocks(F) > 0;
      LocalChange |= foldSingleEntryPhis(F) > 0;
      LocalChange |= mergeChains(F);
      Changed |= LocalChange;
    }
    return Changed;
  }

private:
  bool foldConstantBranches(Function &F) {
    bool Changed = false;
    for (const auto &BB : F.blocks()) {
      auto *Br = dyn_cast_or_null<BranchInst>(BB->getTerminator());
      if (!Br || !Br->isConditional())
        continue;
      // br i1 c, %t, %t  ==>  br %t
      if (Br->getSuccessor(0) == Br->getSuccessor(1)) {
        BasicBlock *T = Br->getSuccessor(0);
        // The phi entries for the two copies of the edge collapse to one.
        for (PhiNode *P : T->phis()) {
          int Idx = P->getBlockIndex(BB);
          // Remove one duplicate entry if present twice.
          int Count = 0;
          for (unsigned K = 0; K < P->getNumIncoming(); ++K)
            if (P->getIncomingBlock(K) == BB)
              ++Count;
          if (Count > 1 && Idx >= 0)
            P->removeIncoming(static_cast<unsigned>(Idx));
        }
        Br->makeUnconditional(T);
        Changed = true;
        continue;
      }
      const auto *C = dyn_cast<ConstantInt>(Br->getCondition());
      if (!C)
        continue;
      BasicBlock *Live = C->isTrue() ? Br->getSuccessor(0) : Br->getSuccessor(1);
      BasicBlock *Dead = C->isTrue() ? Br->getSuccessor(1) : Br->getSuccessor(0);
      removePhiEntriesFor(Dead, BB);
      Br->makeUnconditional(Live);
      Changed = true;
    }
    return Changed;
  }

  /// Merges BB into its unique predecessor when the predecessor jumps
  /// unconditionally to BB and BB is the predecessor's only successor.
  bool mergeChains(Function &F) {
    bool Changed = false;
    bool Merged = true;
    while (Merged) {
      Merged = false;
      for (const auto &BBPtr : F.blocks()) {
        BasicBlock *BB = BBPtr;
        if (BB == F.getEntryBlock())
          continue;
        std::vector<BasicBlock *> Preds = BB->predecessors();
        if (Preds.size() != 1)
          continue;
        BasicBlock *Pred = Preds.front();
        auto *PredBr = dyn_cast_or_null<BranchInst>(Pred->getTerminator());
        if (!PredBr || PredBr->isConditional() || Pred == BB)
          continue;
        assert(PredBr->getSuccessor(0) == BB && "inconsistent CFG");
        // Single-entry phis in BB fold to the incoming value.
        std::vector<PhiNode *> Phis = BB->phis();
        for (PhiNode *P : Phis) {
          assert(P->getNumIncoming() == 1 && "phi/pred mismatch");
          P->replaceAllUsesWith(P->getIncomingValue(0));
          BB->erase(P);
        }
        // Splice instructions: delete Pred's branch, move BB's body.
        Pred->erase(PredBr);
        std::vector<Instruction *> Body(BB->begin(), BB->end());
        for (Instruction *I : Body) {
          BB->remove(I);
          Pred->append(I);
        }
        // Successor phis now come from Pred.
        for (BasicBlock *Succ : Pred->successors())
          for (PhiNode *P : Succ->phis()) {
            int Idx = P->getBlockIndex(BB);
            if (Idx >= 0)
              P->setIncomingBlock(static_cast<unsigned>(Idx), Pred);
          }
        F.eraseBlock(BB);
        Merged = true;
        Changed = true;
        break; // block list invalidated; restart scan
      }
    }
    return Changed;
  }
};

} // namespace

namespace llvmmd {
std::unique_ptr<FunctionPass> createSimplifyCFGPass() {
  return std::make_unique<SimplifyCFGPass>();
}
} // namespace llvmmd
