//===- Validator.h - Translation validation driver --------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The validator proper (paper Figure 1): build both functions into one
/// shared value graph, normalize and re-share to fixpoint, and report
/// whether the two functions' state pointers (return value + final memory)
/// merged into the same node.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_VALIDATOR_VALIDATOR_H
#define LLVMMD_VALIDATOR_VALIDATOR_H

#include "normalize/Rules.h"

#include <cstdint>
#include <string>

namespace llvmmd {

class Function;

struct ValidationResult {
  /// True iff semantics preservation was established.
  bool Validated = false;
  /// True if the pair could not be analyzed (irreducible CFG, multiple
  /// returns, ...). Counted as a (false) alarm, like any other failure.
  bool Unsupported = false;
  std::string Reason;

  // Statistics for the evaluation harness.
  uint64_t GraphNodes = 0;    ///< arena size after construction
  uint64_t LiveNodes = 0;     ///< representative nodes after the run
  uint64_t Rewrites = 0;      ///< rule applications
  uint64_t SharingMerges = 0; ///< merges from sharing maximization
  uint64_t Iterations = 0;    ///< normalize/share rounds
  uint64_t Microseconds = 0;  ///< wall time of the validation
  /// True when the functions' graphs were equal before any normalization —
  /// the O(1) best case of §2.
  bool EqualOnConstruction = false;
};

/// Validates that \p Optimized preserves the semantics of \p Original.
/// Both must have the same signature; they may live in different modules
/// sharing one Context.
ValidationResult validatePair(const Function &Original,
                              const Function &Optimized,
                              const RuleConfig &Config);

} // namespace llvmmd

#endif // LLVMMD_VALIDATOR_VALIDATOR_H
