//===- LLVMMD.cpp - The validated optimizer driver -----------------------====//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "validator/LLVMMD.h"

#include "ir/Cloning.h"
#include "ir/Module.h"
#include "opt/Pass.h"

#include <chrono>
#include <map>

using namespace llvmmd;

std::unique_ptr<Module> llvmmd::runLLVMMD(const Module &M, PassManager &PM,
                                          const RuleConfig &Config,
                                          LLVMMDReport &Report) {
  auto Start = std::chrono::steady_clock::now();
  std::unique_ptr<Module> Out = cloneModule(M);

  for (Function *F : Out->definedFunctions()) {
    const Function *Orig = M.getFunction(F->getName());
    assert(Orig && "function lost during cloning");
    FunctionReport FR;
    FR.Name = F->getName();
    FR.Transformed = PM.run(*F);
    if (FR.Transformed) {
      FR.Result = validatePair(*Orig, *F, Config);
      FR.Validated = FR.Result.Validated;
      if (!FR.Validated) {
        // `replace fo by fi in output` — revert to the original body.
        F->dropBody();
        std::map<const Value *, Value *> VMap;
        cloneFunctionBody(*Orig, *F, VMap);
        // Remap cross-module references (globals, callees).
        for (const auto &BB : F->blocks()) {
          for (Instruction *I : *BB) {
            for (unsigned OpI = 0, E = I->getNumOperands(); OpI != E; ++OpI) {
              if (auto *GV = dyn_cast<GlobalVariable>(I->getOperand(OpI)))
                I->setOperand(OpI, Out->getGlobal(GV->getName()));
            }
            if (auto *Call = dyn_cast<CallInst>(I))
              Call->setCallee(Out->getFunction(Call->getCallee()->getName()));
          }
        }
        FR.Reverted = true;
      }
    }
    Report.Functions.push_back(std::move(FR));
  }
  Report.TotalMicroseconds =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count();
  return Out;
}
