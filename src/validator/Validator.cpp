//===- Validator.cpp - Translation validation driver --------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "validator/Validator.h"

#include "ir/Module.h"
#include "normalize/Normalizer.h"
#include "vg/GraphBuilder.h"

#include <chrono>

using namespace llvmmd;

ValidationResult llvmmd::validatePair(const Function &Original,
                                      const Function &Optimized,
                                      const RuleConfig &Config) {
  ValidationResult R;
  auto Start = std::chrono::steady_clock::now();
  auto Finish = [&]() -> ValidationResult & {
    R.Microseconds = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
    return R;
  };

  if (Original.getFunctionType() != Optimized.getFunctionType()) {
    R.Unsupported = true;
    R.Reason = "signature mismatch";
    return Finish();
  }

  ValueGraph G;
  BuildResult A = buildValueGraph(G, Original);
  if (!A.Supported) {
    R.Unsupported = true;
    R.Reason = "original: " + A.Reason;
    return Finish();
  }
  BuildResult B = buildValueGraph(G, Optimized);
  if (!B.Supported) {
    R.Unsupported = true;
    R.Reason = "optimized: " + B.Reason;
    return Finish();
  }
  R.GraphNodes = G.size();

  // Best case (§2): hash-consing alone already merged the state pointers.
  if (G.find(A.Ret) == G.find(B.Ret)) {
    R.Validated = true;
    R.EqualOnConstruction = true;
    R.LiveNodes = G.countRoots();
    return Finish();
  }

  RuleConfig C = Config;
  std::vector<NodeId> Roots{A.Ret, B.Ret};
  for (unsigned Round = 0; Round < C.MaxIterations; ++Round) {
    ++R.Iterations;
    NormalizeStats S = normalizeGraph(G, Roots, C);
    R.Rewrites += S.Rewrites;
    R.SharingMerges += S.SharingMerges;
    if (G.find(A.Ret) == G.find(B.Ret)) {
      R.Validated = true;
      break;
    }
    if (S.Rewrites == 0 && S.SharingMerges == 0)
      break; // fixpoint without convergence: alarm
  }
  if (!R.Validated)
    R.Reason = "graphs did not merge";
  R.LiveNodes = G.countRoots();
  return Finish();
}
