//===- LLVMMD.h - The validated optimizer driver ----------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `llvm-md` pseudocode (§2): run the off-the-shelf optimizer
/// over a module, validate every function pair, and revert any function
/// whose optimization could not be proven semantics-preserving. The result
/// is a certified-optimized module plus the per-function report the
/// evaluation figures are built from.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_VALIDATOR_LLVMMD_H
#define LLVMMD_VALIDATOR_LLVMMD_H

#include "validator/Validator.h"

#include <memory>
#include <string>
#include <vector>

namespace llvmmd {

class Module;
class PassManager;

struct FunctionReport {
  std::string Name;
  bool Transformed = false; ///< did any pass change the function?
  bool Validated = false;   ///< counted only when Transformed
  bool Reverted = false;    ///< replaced by the original after an alarm
  ValidationResult Result;
};

struct LLVMMDReport {
  std::vector<FunctionReport> Functions;
  uint64_t TotalMicroseconds = 0;

  unsigned transformed() const {
    unsigned N = 0;
    for (const auto &F : Functions)
      N += F.Transformed;
    return N;
  }
  unsigned validated() const {
    unsigned N = 0;
    for (const auto &F : Functions)
      N += F.Transformed && F.Validated;
    return N;
  }
  /// The paper's effectiveness metric: fraction of transformed functions
  /// whose whole optimization pipeline validated.
  double validationRate() const {
    unsigned T = transformed();
    return T == 0 ? 1.0 : static_cast<double>(validated()) / T;
  }
};

/// Optimizes \p M with \p PM, validating each function against its
/// original and reverting the ones that fail. Returns the optimized module
/// (in the same Context) and fills \p Report.
std::unique_ptr<Module> runLLVMMD(const Module &M, PassManager &PM,
                                  const RuleConfig &Config,
                                  LLVMMDReport &Report);

} // namespace llvmmd

#endif // LLVMMD_VALIDATOR_LLVMMD_H
