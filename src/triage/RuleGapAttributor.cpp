//===- RuleGapAttributor.cpp - Name the rule a false alarm misses -------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "triage/RuleGapAttributor.h"

#include "normalize/Normalizer.h"
#include "validator/Validator.h"
#include "vg/GraphBuilder.h"

#include <cstdio>
#include <deque>
#include <set>

using namespace llvmmd;

const char *llvmmd::getRuleSetName(RuleSet RS) {
  switch (RS) {
  case RS_Boolean:
    return "boolean";
  case RS_PhiSimplify:
    return "phi-simplify";
  case RS_EtaMu:
    return "eta-mu";
  case RS_ConstFold:
    return "const-fold";
  case RS_Canonicalize:
    return "canonicalize";
  case RS_LoadStore:
    return "load-store";
  case RS_Commuting:
    return "commuting";
  case RS_Libc:
    return "libc";
  case RS_FloatFold:
    return "float-fold";
  case RS_GlobalFold:
    return "global-fold";
  default:
    return "?";
  }
}

namespace {

/// Every individually probeable family, in mask-bit order (deterministic
/// probe sequence).
const RuleSet AllFamilies[] = {
    RS_Boolean,      RS_PhiSimplify, RS_EtaMu,     RS_ConstFold,
    RS_Canonicalize, RS_LoadStore,   RS_Commuting, RS_Libc,
    RS_FloatFold,    RS_GlobalFold,
};

std::string describeNode(const ValueGraph &G, NodeId Id) {
  const Node &N = G.node(Id);
  std::string S = getNodeKindName(N.Kind);
  char Buf[64];
  switch (N.Kind) {
  case NodeKind::ConstInt:
    std::snprintf(Buf, sizeof(Buf), "(%lld)",
                  static_cast<long long>(N.IntVal));
    S += Buf;
    break;
  case NodeKind::ConstFloat:
    std::snprintf(Buf, sizeof(Buf), "(%.17g)", N.FloatVal);
    S += Buf;
    break;
  case NodeKind::Op:
    S += '(';
    S += getOpcodeName(N.Op);
    if (N.Op == Opcode::ICmp) {
      S += ' ';
      S += getPredName(static_cast<ICmpPred>(N.Pred));
    } else if (N.Op == Opcode::FCmp) {
      S += ' ';
      S += getPredName(static_cast<FCmpPred>(N.Pred));
    }
    S += ')';
    break;
  case NodeKind::Global:
  case NodeKind::Call:
    S += '(' + N.Str + ')';
    break;
  case NodeKind::Param:
    std::snprintf(Buf, sizeof(Buf), "(%lld)",
                  static_cast<long long>(N.IntVal));
    S += Buf;
    break;
  default:
    break;
  }
  if (N.Ty) {
    S += ':';
    S += N.Ty->getName();
  }
  return S;
}

bool headsEqual(const Node &A, const Node &B) {
  return A.Kind == B.Kind && A.Op == B.Op && A.Pred == B.Pred &&
         A.Ty == B.Ty && A.IntVal == B.IntVal && A.FloatVal == B.FloatVal &&
         A.Str == B.Str && A.Ops.size() == B.Ops.size();
}

} // namespace

RuleGapOutcome llvmmd::attributeRuleGap(const Function &A, const Function &B,
                                        const RuleConfig &Rules) {
  RuleGapOutcome Out;

  // Reproduce the validator's fixpoint on a private graph, then diff.
  ValueGraph G;
  BuildResult RA = buildValueGraph(G, A);
  BuildResult RB = buildValueGraph(G, B);
  if (!RA.Supported || !RB.Supported)
    return Out; // nothing to diff; probing below is pointless too
  Out.Ran = true;
  std::vector<NodeId> Roots{RA.Ret, RB.Ret};
  for (unsigned Round = 0; Round < Rules.MaxIterations; ++Round) {
    if (G.find(RA.Ret) == G.find(RB.Ret))
      break;
    NormalizeStats S = normalizeGraph(G, Roots, Rules);
    if (S.Rewrites == 0 && S.SharingMerges == 0)
      break;
  }
  if (G.find(RA.Ret) == G.find(RB.Ret)) {
    // The pair validates after all (the caller raced a different
    // configuration, or the alarm came from a fixpoint-budget cutoff that
    // this fresh run got past); there is no gap to attribute.
    Out.Ran = false;
    return Out;
  }

  // Lockstep breadth-first walk over the two root cones: the first pair of
  // unmerged nodes with disagreeing heads is where normalization got
  // stuck. Head-congruent unmerged pairs (μ cycles the sharing passes
  // could not unify) descend into their operands instead.
  std::set<std::pair<NodeId, NodeId>> Seen;
  std::deque<std::pair<NodeId, NodeId>> Work;
  Work.emplace_back(G.find(RA.Ret), G.find(RB.Ret));
  while (!Work.empty()) {
    auto [X, Y] = Work.front();
    Work.pop_front();
    if (X == Y || !Seen.insert({X, Y}).second)
      continue;
    const Node &NX = G.node(X);
    const Node &NY = G.node(Y);
    if (!headsEqual(NX, NY)) {
      Out.Diverged = true;
      Out.NodeA = describeNode(G, X);
      Out.NodeB = describeNode(G, Y);
      break;
    }
    for (size_t I = 0; I < NX.Ops.size(); ++I)
      Work.emplace_back(G.find(NX.Ops[I]), G.find(NY.Ops[I]));
  }

  // Probe: enable each disabled family alone and re-validate. A hit is a
  // checked attribution, not a heuristic. RS_All distinguishes "needs a
  // combination of extensions" from "no known rule helps".
  for (RuleSet RS : AllFamilies) {
    if (Rules.Mask & RS)
      continue;
    RuleConfig Probe = Rules;
    Probe.Mask |= RS;
    if (validatePair(A, B, Probe).Validated) {
      Out.MissingRuleMask = RS;
      Out.MissingRule = getRuleSetName(RS);
      return Out;
    }
  }
  if ((Rules.Mask & RS_All) != RS_All) {
    RuleConfig Probe = Rules;
    Probe.Mask |= RS_All;
    Out.ClosedByAllRules = validatePair(A, B, Probe).Validated;
  }
  return Out;
}
