//===- Reducer.cpp - Delta reduction of failing pairs -------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "triage/Reducer.h"

#include "ir/Cloning.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "opt/Local.h"
#include "support/Hashing.h"
#include "validator/Validator.h"

#include <map>
#include <set>
#include <unordered_map>

using namespace llvmmd;

namespace {

/// Probe corpus size for witness-preservation / anti-witness checks during
/// reduction (the recorded witness input is replayed first, so the probe
/// only pays off when a cut re-routes the divergence).
constexpr unsigned ReduceProbeInputs = 12;

/// Interpreter fuel for reduction probes. Cuts routinely delete the
/// loop-bound masking of generated workloads, turning probe runs into
/// step-budget exhaustion — at the triage default of 2^20 steps that is
/// ~50ms *per attempt*, which dominated reduction wall time. Probe runs
/// that exhaust this small budget are skipped, which is sound (a skipped
/// run is never a witness), merely conservative.
constexpr uint64_t ReduceStepBudget = 1u << 14;

/// Normalize/share round cap while reducing. Soundness is one-sided: a
/// pair the full-budget validator rejects is by definition still unmerged
/// at any smaller budget, so the baseline and every genuinely-failing cut
/// stay failing under the cap — only a cut whose pair would merge late can
/// be misclassified as failing, which the final full-budget re-validation
/// in reducePair catches. The cap is what makes reduction affordable:
/// badly mismatched cut pairs otherwise churn thousands of rewrites
/// through all 32 rounds on every attempt.
constexpr unsigned ReduceMaxIterations = 8;

/// One candidate cut, addressed structurally so it can be re-located in a
/// clone of the pair.
struct Cut {
  uint8_t Side;   ///< 0 = original, 1 = optimized
  uint32_t Block; ///< block index in Function::blocks() order
  uint32_t Index; ///< instruction position within the block (Kind 2)
  uint8_t Kind;   ///< 0/1: commit conditional branch to successor 0/1;
                  ///< 2: erase the instruction, uses become undef
};

void enumerateCuts(const Function &F, uint8_t Side, std::vector<Cut> &Out) {
  // Instruction cuts first, branch cuts after: the sweep iterates the list
  // from the back, so whole-segment (branch) cuts are tried before
  // instruction nibbling and the pair shrinks fast while validations are
  // still expensive.
  uint32_t Bi = 0;
  for (const auto &BB : F.blocks()) {
    uint32_t Ii = 0;
    for (const Instruction *I : *BB) {
      if (!I->isTerminator())
        Out.push_back({Side, Bi, Ii, 2});
      ++Ii;
    }
    ++Bi;
  }
  Bi = 0;
  for (const auto &BB : F.blocks()) {
    if (auto *Br = dyn_cast_or_null<BranchInst>(BB->getTerminator()))
      if (Br->isConditional()) {
        Out.push_back({Side, Bi, 0, 0});
        Out.push_back({Side, Bi, 0, 1});
      }
    ++Bi;
  }
}

/// Applies \p C to \p F (a private clone). Returns false when the cut does
/// not apply (degenerate branch, index drift); the caller just skips it.
bool applyCut(Function &F, const Cut &C) {
  if (C.Block >= F.getNumBlocks())
    return false;
  BasicBlock *BB = F.blocks()[C.Block];
  if (C.Kind == 2) {
    if (C.Index >= BB->size())
      return false;
    auto It = BB->begin();
    std::advance(It, C.Index);
    Instruction *I = *It;
    if (I->isTerminator())
      return false;
    if (!I->getType()->isVoid() && !I->use_empty())
      I->replaceAllUsesWith(
          F.getParent()->getContext().getUndef(I->getType()));
    BB->erase(I);
    return true;
  }
  auto *Br = dyn_cast_or_null<BranchInst>(BB->getTerminator());
  if (!Br || !Br->isConditional())
    return false;
  BasicBlock *Target = Br->getSuccessor(C.Kind);
  BasicBlock *Other = Br->getSuccessor(1 - C.Kind);
  if (Target == Other)
    return false;
  Br->makeUnconditional(Target);
  removePhiEntriesFor(Other, BB);
  removeUnreachableBlocks(F);
  foldSingleEntryPhis(F);
  return true;
}

/// The interestingness predicate: the trial pair must verify, keep its
/// alarm class under differential testing, and still fail validation with
/// the baseline Unsupported status. Checks are ordered cheap-first — the
/// interpreter probe costs ~1ms while validatePair on a full-size pair can
/// cost hundreds — and validation verdicts are memoized by fingerprint
/// pair, so sweep restarts never re-validate an already-seen state. Only
/// memo misses count against the reduction budget.
struct Predicate {
  const RuleConfig &Rules;
  bool BaselineUnsupported;
  const AbstractInput *Witness;
  uint64_t StepBudget;
  unsigned *Validations;
  /// (fpA, fpB) -> the pair still fails with the baseline alarm class.
  std::unordered_map<uint64_t, bool> Memo;

  bool holds(Module &MA, Function &A, Module &MB, Function &B) {
    std::vector<std::string> Errors;
    if (!verifyFunction(A, Errors) || !verifyFunction(B, Errors))
      return false;
    // A memoized "validates / wrong class" verdict sinks the cut no matter
    // what the differential says — check it before paying for the probes,
    // which sweep restarts would otherwise re-run per already-seen state.
    uint64_t Key = hashCombine(fingerprintFunction(A), fingerprintFunction(B));
    auto It = Memo.find(Key);
    if (It != Memo.end() && !It->second)
      return false;
    DifferentialTester DT(MA, MB, StepBudget);
    if (Witness) {
      // A witnessed pair must stay a miscompile: the recorded input is
      // replayed first, a short probe hunts for a re-routed divergence.
      if (DT.compareOnce(A, B, *Witness) != 1 &&
          !DT.test(A, B, ReduceProbeInputs).HasWitness)
        return false;
    } else {
      // A suspected false alarm must not become a real divergence.
      if (DT.test(A, B, ReduceProbeInputs).HasWitness)
        return false;
    }
    if (It != Memo.end())
      return It->second;
    RuleConfig C = Rules;
    C.M = &MA;
    ++*Validations;
    ValidationResult R = validatePair(A, B, C);
    bool StillFails = !R.Validated && R.Unsupported == BaselineUnsupported;
    Memo.emplace(Key, StillFails);
    return StillFails;
  }
};

} // namespace

std::unique_ptr<Module> llvmmd::extractFunctionModule(const Module &Src,
                                                      const Function &F) {
  auto M = std::make_unique<Module>(Src.getContext(),
                                    Src.getName() + "." + F.getName());
  for (const auto &G : Src.globals())
    M->createGlobal(G->getValueType(), G->getName(), G->getInitializer(),
                    G->isConstantGlobal());
  for (const auto &Fn : Src.functions()) {
    Function *D = M->createFunction(Fn->getFunctionType(), Fn->getName());
    D->setMemoryEffect(Fn->getMemoryEffect());
  }
  // Clone the root's body plus every defined function it transitively
  // calls (the interpreter executes callees); everything else stays a
  // declaration.
  std::vector<const Function *> Work{&F};
  std::set<const Function *> Cloned;
  while (!Work.empty()) {
    const Function *Cur = Work.back();
    Work.pop_back();
    if (Cur->isDeclaration() || !Cloned.insert(Cur).second)
      continue;
    Function *Dst = M->getFunction(Cur->getName());
    std::map<const Value *, Value *> VMap;
    cloneFunctionBody(*Cur, *Dst, VMap);
    // Collect source-module callees before the remap points them away.
    for (const auto &BB : Dst->blocks())
      for (Instruction *I : *BB)
        if (auto *Call = dyn_cast<CallInst>(I))
          Work.push_back(Call->getCallee());
    remapModuleReferences(*Dst, *M);
  }
  return M;
}

ReducedPair llvmmd::reducePair(const TriagePair &Pair, const RuleConfig &Rules,
                               unsigned Budget, uint64_t StepBudget,
                               const AbstractInput *Witness,
                               unsigned CertifyInputs) {
  ReducedPair Out;
  Out.MA = extractFunctionModule(*Pair.OrigModule, *Pair.Orig);
  Out.MB = extractFunctionModule(*Pair.OptModule, *Pair.Opt);
  Out.A = Out.MA->getFunction(Pair.Orig->getName());
  Out.B = Out.MB->getFunction(Pair.Opt->getName());
  if (Budget == 0)
    return Out;

  // Baseline: the extracted pair must reproduce the rejection; its
  // Unsupported status becomes part of the predicate so reduction cannot
  // drift into a different alarm class. The predicate runs with a capped
  // fixpoint budget (see ReduceMaxIterations).
  RuleConfig Capped = Rules;
  Capped.MaxIterations = std::min(Rules.MaxIterations, ReduceMaxIterations);
  RuleConfig C = Capped;
  C.M = Out.MA.get();
  ++Out.Validations;
  ValidationResult Base = validatePair(*Out.A, *Out.B, C);
  if (Base.Validated)
    return Out;
  uint64_t ProbeBudget = std::min(StepBudget, ReduceStepBudget);
  if (Witness) {
    // The witness must be reproducible at the probe budget, or every cut
    // would be rejected and the untouched pair misreported as 1-minimal.
    // Bail honestly instead: the pair is not reducible at this budget.
    DifferentialTester DT(*Out.MA, *Out.MB, ProbeBudget);
    if (DT.compareOnce(*Out.A, *Out.B, *Witness) != 1 &&
        !DT.test(*Out.A, *Out.B, ReduceProbeInputs).HasWitness)
      return Out;
  }
  Predicate P{Capped, Base.Unsupported, Witness, ProbeBudget,
              &Out.Validations, {}};
  Out.Ran = true;

  // First-improvement sweeps to a fixpoint: cuts are enumerated in
  // deterministic structural order and tried from the back (users before
  // their definitions, later segments first); an accepted cut restarts the
  // sweep because it invalidates structural indices.
  bool Progress = true;
  bool SweepComplete = false;
  bool AnyCutAccepted = false;
  while (Progress && Out.Validations < Budget) {
    Progress = false;
    SweepComplete = true;
    std::vector<Cut> Cuts;
    enumerateCuts(*Out.A, 0, Cuts);
    enumerateCuts(*Out.B, 1, Cuts);
    for (auto It = Cuts.rbegin(); It != Cuts.rend(); ++It) {
      if (Out.Validations >= Budget) {
        SweepComplete = false;
        break;
      }
      // Clone only the side being cut; the other side is read-only.
      std::unique_ptr<Module> Trial =
          cloneModule(It->Side ? *Out.MB : *Out.MA);
      Function *TF = Trial->getFunction(It->Side ? Out.B->getName()
                                                : Out.A->getName());
      if (!applyCut(*TF, *It))
        continue;
      Module &TMA = It->Side ? *Out.MA : *Trial;
      Module &TMB = It->Side ? *Trial : *Out.MB;
      Function &TA = It->Side ? *Out.A : *TF;
      Function &TB = It->Side ? *TF : *Out.B;
      if (!P.holds(TMA, TA, TMB, TB))
        continue;
      (It->Side ? Out.MB : Out.MA) = std::move(Trial);
      (It->Side ? Out.B : Out.A) = TF;
      Progress = true;
      AnyCutAccepted = true;
      // An accepted instruction cut leaves every not-yet-tried (lower)
      // index valid — the reverse iteration keeps sweeping in place. A
      // branch cut restructures the CFG (blocks deleted, phis folded), so
      // the sweep restarts with fresh indices; the memo keeps re-tried
      // states from re-validating.
      if (It->Kind != 2)
        break;
    }
  }
  // 1-minimal iff a full sweep ran to completion accepting nothing — a
  // sweep aborted by the budget says nothing about the untried cuts.
  Out.Minimal = !Progress && SweepComplete;

  // The capped predicate can err in two ways: keep a cut whose pair
  // merges late (capped fixpoint rounds), or keep a cut whose divergence
  // is only visible past the probe corpus/step budget. Certify the end
  // state at the *full* budget on both axes — validation verdict and
  // alarm class — and fall back to the unreduced extraction if either
  // slipped through. Gated on accepted cuts, not instruction counts: a
  // branch commit can be accepted without changing the count.
  if (AnyCutAccepted) {
    RuleConfig Full = Rules;
    Full.M = Out.MA.get();
    ++Out.Validations;
    bool Certified = !validatePair(*Out.A, *Out.B, Full).Validated;
    if (Certified) {
      DifferentialTester DT(*Out.MA, *Out.MB, StepBudget);
      bool Diverges = (Witness && DT.compareOnce(*Out.A, *Out.B,
                                                 *Witness) == 1) ||
                      DT.test(*Out.A, *Out.B, CertifyInputs).HasWitness;
      Certified = Witness ? Diverges : !Diverges;
    }
    if (!Certified) {
      Out.MA = extractFunctionModule(*Pair.OrigModule, *Pair.Orig);
      Out.MB = extractFunctionModule(*Pair.OptModule, *Pair.Opt);
      Out.A = Out.MA->getFunction(Pair.Orig->getName());
      Out.B = Out.MB->getFunction(Pair.Opt->getName());
      Out.Minimal = false;
    }
  }
  return Out;
}
