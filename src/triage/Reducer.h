//===- Reducer.h - Delta reduction of failing pairs -------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugs a rejected (original, optimized) pair down to a minimal
/// failing exemplar, the automated version of the by-hand shrinking that
/// dominated the paper's alarm triage. The cut vocabulary has two
/// granularities, applied over clones and re-validated after every cut:
///
///  * block/segment cuts — a conditional branch is committed to one arm
///    (the other arm's segment, including whole loops, becomes unreachable
///    and is deleted);
///  * instruction cuts — a non-terminator instruction is erased and its
///    uses replaced by undef (which the interpreter models as zero, so
///    reduced witnesses stay executable).
///
/// The interestingness predicate preserves the alarm class: the reduced
/// pair must still fail validation with the same Unsupported status, and —
/// when the pair carries a miscompile witness — must still diverge under
/// the differential tester (a witnessed pair never reduces into a mere
/// false alarm, and vice versa). Cuts are enumerated and applied in a
/// deterministic order to a fixpoint at which no single cut preserves the
/// predicate (1-minimality), bounded by a re-validation budget.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_TRIAGE_REDUCER_H
#define LLVMMD_TRIAGE_REDUCER_H

#include "normalize/Rules.h"
#include "triage/DifferentialTester.h"
#include "triage/Triage.h"

#include <memory>

namespace llvmmd {

class Function;
class Module;

/// A reduced pair: private scratch modules (in the input pair's Context)
/// holding the minimal failing functions.
struct ReducedPair {
  bool Ran = false;     ///< the baseline predicate held and reduction ran
  bool Minimal = false; ///< fixpoint reached within the budget
  unsigned Validations = 0;
  std::unique_ptr<Module> MA, MB;
  Function *A = nullptr;
  Function *B = nullptr;
};

/// Extracts \p F into a fresh single-function module in the same Context:
/// clones of \p Src's globals, declarations for every function, bodies for
/// \p F and everything it transitively calls. Shared by the reducer and
/// the triage tests.
std::unique_ptr<Module> extractFunctionModule(const Module &Src,
                                              const Function &F);

/// Reduces \p Pair under \p Rules. \p Budget bounds the number of
/// predicate re-validations. When \p Witness is non-null the pair is a
/// witnessed miscompile and every accepted cut must preserve a divergence
/// (the recorded witness input is replayed first); when it is null the
/// pair is a suspected false alarm and accepted cuts must stay
/// divergence-free on a probe corpus. Per-cut checks run at a reduced
/// fixpoint/step budget for speed; the end state is re-certified at the
/// full budget — still failing validation, same alarm class over
/// \p CertifyInputs corpus entries at the full \p StepBudget — and the
/// reduction is discarded if certification fails.
ReducedPair reducePair(const TriagePair &Pair, const RuleConfig &Rules,
                       unsigned Budget, uint64_t StepBudget,
                       const AbstractInput *Witness,
                       unsigned CertifyInputs = 48);

} // namespace llvmmd

#endif // LLVMMD_TRIAGE_REDUCER_H
