//===- Triage.h - Alarm triage for rejected function pairs ------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alarm triage subsystem. A `Validated = false` verdict from the
/// value-graph validator is ambiguous: it is either a real miscompile or a
/// *false alarm* — a correct transformation the enabled rule sets cannot
/// prove (the paper's headline evaluation metric). Triage post-processes a
/// rejected (original, optimized) pair in three stages:
///
///  1. DifferentialTester drives the reference Interpreter on both
///     functions over a deterministic, boundary-seeded input corpus. A
///     diverging run (same inputs, different return value or final global
///     memory) is a concrete *miscompile witness*; exhausting the corpus
///     without divergence classifies the alarm as *suspected-false-alarm*.
///     Runs that trap or exhaust the step budget are skipped — the paper
///     assumes termination and absence of runtime errors, so they can never
///     count as witnesses.
///  2. Reducer delta-debugs the pair down to a minimal failing exemplar:
///     block- and instruction-granularity cuts over clones, re-validating
///     after each cut, to a deterministic 1-minimal fixpoint.
///  3. RuleGapAttributor diffs the two normalized value graphs of a
///     (reduced) false alarm, reports the first structurally diverging node
///     pair, and probes which missing normalizer rule family (Rules.h)
///     would close the gap.
///
/// Everything here is a pure function of the pair, the rule configuration
/// and the options — no wall-clock, no pointer order — so triage output is
/// byte-identical across engine thread counts.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_TRIAGE_TRIAGE_H
#define LLVMMD_TRIAGE_TRIAGE_H

#include <cstdint>
#include <string>
#include <vector>

namespace llvmmd {

class Function;
class Module;
struct RuleConfig;

/// What triage concluded about one rejected pair.
enum class TriageClassification : uint8_t {
  NotRun,              ///< triage disabled, or the pair validated
  MiscompileWitnessed, ///< the interpreter found diverging behavior
  SuspectedFalseAlarm, ///< corpus exhausted with no divergence
  Inconclusive,        ///< every corpus run trapped or ran out of budget
};

/// Stable lowercase name, used by the report emitters ("witness",
/// "suspected-false-alarm", ...).
const char *getTriageClassificationName(TriageClassification C);

/// How the differential corpus is biased toward a benchmark's feature mix.
/// Percentages are 0-100 like BenchmarkProfile's; all-zero means the corpus
/// is derived from the signature alone (byte-identical to the unbiased
/// corpus). Mined from the module by default so parsed .ll input benefits
/// exactly like generated profiles.
struct CorpusBias {
  /// The values below were mined or explicitly chosen; an un-Derived bias
  /// asks triagePair to mine the pair's original module.
  bool Derived = false;
  unsigned LibcPct = 0;   ///< strlen/atoi/memset traffic: string variety up,
                          ///< null pointers down
  unsigned FloatPct = 0;  ///< float arithmetic: catastrophic-cancellation
                          ///< magnitudes up
  unsigned GlobalPct = 0; ///< global loads/stores: small non-negative
                          ///< index-shaped integers up
};

/// Mines \p M for its libc/float/global mix (fraction of defined functions
/// touching each feature), reproducing the generating BenchmarkProfile's
/// character at triage time. Deterministic: a pure function of the module.
CorpusBias mineCorpusBias(const Module &M);

/// Knobs for the engine's triage phase (EngineConfig::Triage).
struct TriageOptions {
  /// Run triage on every rejected pair of a run.
  bool Enabled = false;
  /// Differential-testing corpus size per pair (boundary values first, then
  /// seeded pseudo-random fill).
  unsigned MaxInputs = 48;
  /// Delta-reduction budget in re-validations; 0 disables reduction.
  unsigned ReduceBudget = 128;
  /// Interpreter fuel per run; exhausting it skips the input.
  uint64_t StepBudget = 1u << 20;
  /// Bias the witness-search corpus from the original module's libc/float/
  /// global mix (mineCorpusBias) instead of the signature alone. The
  /// reducer's alarm-class probes stay signature-derived either way, so
  /// reduction behavior does not depend on module contents.
  bool ProfileBias = true;
  /// Explicit bias (Derived set) wins over mining; the default un-Derived
  /// value defers to ProfileBias.
  CorpusBias Bias;
};

/// Resolves the bias triagePair will use for a pair from \p OrigModule: the
/// explicit Opts.Bias when Derived, the mined mix when ProfileBias, the
/// neutral all-zero bias otherwise.
CorpusBias resolveCorpusBias(const TriageOptions &Opts, const Module &OrigModule);

/// Digest of everything a cached TriageResult depends on besides the pair
/// fingerprints and the rule configuration: corpus size, budgets, and the
/// resolved corpus bias. Persisted next to stored triage entries so a
/// replayed result is provably the one these options would recompute.
uint64_t triageOptionsDigest(const TriageOptions &Opts, const CorpusBias &Bias);

/// The outcome of triaging one rejected pair. Every field is deterministic;
/// the report emitters surface a subset, tools (bug_detector) can print the
/// rest.
struct TriageResult {
  TriageClassification Classification = TriageClassification::NotRun;

  // Differential testing.
  unsigned InputsTried = 0;   ///< corpus entries executed on both sides
  unsigned InputsSkipped = 0; ///< entries where either side was non-OK
  /// Witness inputs, one rendered "argN=value" string per parameter
  /// (empty unless Classification == MiscompileWitnessed).
  std::vector<std::string> WitnessInputs;
  /// What diverged on the witness: "return: A != B" or "global 'g' differs".
  std::string WitnessDivergence;

  // Delta reduction.
  bool Reduced = false;           ///< the reducer ran to a fixpoint
  bool ReduceMinimal = false;     ///< fixpoint reached within the budget
  unsigned ReduceValidations = 0; ///< predicate re-validations spent
  uint64_t OrigInstsBefore = 0, OptInstsBefore = 0;
  uint64_t OrigInstsAfter = 0, OptInstsAfter = 0;
  /// The minimal failing pair, printed as IR text (kept out of the report
  /// emitters; for tools and tests).
  std::string ReducedOrig, ReducedOpt;

  // Rule-gap attribution (false alarms only).
  bool GapRan = false;
  bool GapDiverged = false; ///< a head-diverging node pair was found
  std::string GapNodeA, GapNodeB;
  /// The single rule family whose addition makes the pair validate, or 0 /
  /// empty when no single family closes the gap.
  unsigned MissingRuleMask = 0;
  std::string MissingRule;
  /// No single family sufficed, but enabling every rule set validates.
  bool ClosedByAllRules = false;
};

/// One rejected pair, as the engine sees it: the original and optimized
/// functions with the modules that own them (the modules provide globals
/// and callees to the interpreter and the scratch-module extraction). Both
/// modules must share one Context.
struct TriagePair {
  const Module *OrigModule = nullptr;
  const Function *Orig = nullptr;
  const Module *OptModule = nullptr;
  const Function *Opt = nullptr;
};

/// Triage one rejected pair: differential witness search, then delta
/// reduction, then (for non-witnessed alarms) rule-gap attribution.
/// \p Rules is the configuration the validator rejected the pair under;
/// Rules.M is rebound internally where needed. Thread-safe against itself
/// on other pairs (scratch modules are private; Context interning is
/// lock-striped).
TriageResult triagePair(const TriagePair &Pair, const RuleConfig &Rules,
                        const TriageOptions &Opts);

} // namespace llvmmd

#endif // LLVMMD_TRIAGE_TRIAGE_H
