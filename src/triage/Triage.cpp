//===- Triage.cpp - Alarm triage orchestration --------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "triage/Triage.h"

#include "ir/Module.h"
#include "ir/Printer.h"
#include "support/Hashing.h"
#include "triage/DifferentialTester.h"
#include "triage/Reducer.h"
#include "triage/RuleGapAttributor.h"

using namespace llvmmd;

const char *llvmmd::getTriageClassificationName(TriageClassification C) {
  switch (C) {
  case TriageClassification::NotRun:
    return "none";
  case TriageClassification::MiscompileWitnessed:
    return "witness";
  case TriageClassification::SuspectedFalseAlarm:
    return "suspected-false-alarm";
  case TriageClassification::Inconclusive:
    return "inconclusive";
  }
  return "none";
}

CorpusBias llvmmd::mineCorpusBias(const Module &M) {
  CorpusBias B;
  B.Derived = true;
  unsigned Fns = 0, LibcFns = 0, FloatFns = 0, GlobalFns = 0;
  for (const Function *F : M.definedFunctions()) {
    ++Fns;
    bool Libc = false, Float = false, Global = false;
    for (const auto &BB : F->blocks()) {
      for (const Instruction *I : *BB) {
        Opcode Op = I->getOpcode();
        if (I->getType()->isFloat() || isFloatBinaryOp(Op) ||
            Op == Opcode::FCmp)
          Float = true;
        if (const auto *Call = dyn_cast<CallInst>(I)) {
          const std::string &Callee = Call->getCallee()->getName();
          if (Callee == "strlen" || Callee == "atoi" || Callee == "memset")
            Libc = true;
        }
        for (unsigned Oi = 0, Oe = I->getNumOperands(); Oi != Oe; ++Oi)
          if (isa<GlobalVariable>(I->getOperand(Oi)))
            Global = true;
      }
    }
    LibcFns += Libc;
    FloatFns += Float;
    GlobalFns += Global;
  }
  if (Fns) {
    B.LibcPct = 100 * LibcFns / Fns;
    B.FloatPct = 100 * FloatFns / Fns;
    B.GlobalPct = 100 * GlobalFns / Fns;
  }
  return B;
}

CorpusBias llvmmd::resolveCorpusBias(const TriageOptions &Opts,
                                     const Module &OrigModule) {
  if (Opts.Bias.Derived)
    return Opts.Bias;
  if (Opts.ProfileBias)
    return mineCorpusBias(OrigModule);
  CorpusBias Neutral;
  Neutral.Derived = true;
  return Neutral;
}

uint64_t llvmmd::triageOptionsDigest(const TriageOptions &Opts,
                                     const CorpusBias &Bias) {
  uint64_t H = hashCombine(0x74726961676531ULL /* "triage1" */,
                           Opts.MaxInputs);
  H = hashCombine(H, Opts.ReduceBudget);
  H = hashCombine(H, Opts.StepBudget);
  H = hashCombine(H, (static_cast<uint64_t>(Bias.LibcPct) << 32) |
                         (static_cast<uint64_t>(Bias.FloatPct) << 16) |
                         Bias.GlobalPct);
  return H;
}

TriageResult llvmmd::triagePair(const TriagePair &Pair,
                                const RuleConfig &Rules,
                                const TriageOptions &Opts) {
  TriageResult R;

  // Stage 1: hunt for a concrete miscompile witness, over a corpus biased
  // toward the original module's feature mix (resolveCorpusBias). The
  // reducer below keeps its signature-derived probe corpus: its only job
  // is preserving the alarm class across cuts, and cuts change the very
  // features a module-level bias would be mined from.
  CorpusBias Bias = resolveCorpusBias(Opts, *Pair.OrigModule);
  DifferentialTester DT(*Pair.OrigModule, *Pair.OptModule, Opts.StepBudget);
  DiffOutcome Diff = DT.test(*Pair.Orig, *Pair.Opt, Opts.MaxInputs, Bias);
  R.Classification = Diff.Classification;
  R.InputsTried = Diff.Tried;
  R.InputsSkipped = Diff.Skipped;
  if (Diff.HasWitness) {
    R.WitnessInputs = Diff.WitnessRendered;
    R.WitnessDivergence = Diff.Divergence;
  }

  // Stage 2: delta-reduce to a minimal failing exemplar.
  R.OrigInstsBefore = Pair.Orig->getInstructionCount();
  R.OptInstsBefore = Pair.Opt->getInstructionCount();
  R.OrigInstsAfter = R.OrigInstsBefore;
  R.OptInstsAfter = R.OptInstsBefore;
  ReducedPair Reduced;
  if (Opts.ReduceBudget > 0) {
    Reduced = reducePair(Pair, Rules, Opts.ReduceBudget, Opts.StepBudget,
                         Diff.HasWitness ? &Diff.Witness : nullptr,
                         Opts.MaxInputs);
    R.ReduceValidations = Reduced.Validations;
    if (Reduced.Ran) {
      R.Reduced = true;
      R.ReduceMinimal = Reduced.Minimal;
      R.OrigInstsAfter = Reduced.A->getInstructionCount();
      R.OptInstsAfter = Reduced.B->getInstructionCount();
      R.ReducedOrig = printFunction(*Reduced.A);
      R.ReducedOpt = printFunction(*Reduced.B);
    }
  }

  // Stage 3: attribute the rule gap of a non-witnessed alarm, preferring
  // the reduced pair (smaller graphs, sharper diff).
  if (R.Classification != TriageClassification::MiscompileWitnessed) {
    RuleConfig C = Rules;
    RuleGapOutcome Gap;
    if (Reduced.Ran) {
      C.M = Reduced.MA.get();
      Gap = attributeRuleGap(*Reduced.A, *Reduced.B, C);
    }
    if (!Gap.Ran) {
      C.M = Pair.OrigModule;
      Gap = attributeRuleGap(*Pair.Orig, *Pair.Opt, C);
    }
    R.GapRan = Gap.Ran;
    R.GapDiverged = Gap.Diverged;
    R.GapNodeA = Gap.NodeA;
    R.GapNodeB = Gap.NodeB;
    R.MissingRuleMask = Gap.MissingRuleMask;
    R.MissingRule = Gap.MissingRule;
    R.ClosedByAllRules = Gap.ClosedByAllRules;
  }
  return R;
}
