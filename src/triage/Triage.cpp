//===- Triage.cpp - Alarm triage orchestration --------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "triage/Triage.h"

#include "ir/Module.h"
#include "ir/Printer.h"
#include "triage/DifferentialTester.h"
#include "triage/Reducer.h"
#include "triage/RuleGapAttributor.h"

using namespace llvmmd;

const char *llvmmd::getTriageClassificationName(TriageClassification C) {
  switch (C) {
  case TriageClassification::NotRun:
    return "none";
  case TriageClassification::MiscompileWitnessed:
    return "witness";
  case TriageClassification::SuspectedFalseAlarm:
    return "suspected-false-alarm";
  case TriageClassification::Inconclusive:
    return "inconclusive";
  }
  return "none";
}

TriageResult llvmmd::triagePair(const TriagePair &Pair,
                                const RuleConfig &Rules,
                                const TriageOptions &Opts) {
  TriageResult R;

  // Stage 1: hunt for a concrete miscompile witness.
  DifferentialTester DT(*Pair.OrigModule, *Pair.OptModule, Opts.StepBudget);
  DiffOutcome Diff = DT.test(*Pair.Orig, *Pair.Opt, Opts.MaxInputs);
  R.Classification = Diff.Classification;
  R.InputsTried = Diff.Tried;
  R.InputsSkipped = Diff.Skipped;
  if (Diff.HasWitness) {
    R.WitnessInputs = Diff.WitnessRendered;
    R.WitnessDivergence = Diff.Divergence;
  }

  // Stage 2: delta-reduce to a minimal failing exemplar.
  R.OrigInstsBefore = Pair.Orig->getInstructionCount();
  R.OptInstsBefore = Pair.Opt->getInstructionCount();
  R.OrigInstsAfter = R.OrigInstsBefore;
  R.OptInstsAfter = R.OptInstsBefore;
  ReducedPair Reduced;
  if (Opts.ReduceBudget > 0) {
    Reduced = reducePair(Pair, Rules, Opts.ReduceBudget, Opts.StepBudget,
                         Diff.HasWitness ? &Diff.Witness : nullptr,
                         Opts.MaxInputs);
    R.ReduceValidations = Reduced.Validations;
    if (Reduced.Ran) {
      R.Reduced = true;
      R.ReduceMinimal = Reduced.Minimal;
      R.OrigInstsAfter = Reduced.A->getInstructionCount();
      R.OptInstsAfter = Reduced.B->getInstructionCount();
      R.ReducedOrig = printFunction(*Reduced.A);
      R.ReducedOpt = printFunction(*Reduced.B);
    }
  }

  // Stage 3: attribute the rule gap of a non-witnessed alarm, preferring
  // the reduced pair (smaller graphs, sharper diff).
  if (R.Classification != TriageClassification::MiscompileWitnessed) {
    RuleConfig C = Rules;
    RuleGapOutcome Gap;
    if (Reduced.Ran) {
      C.M = Reduced.MA.get();
      Gap = attributeRuleGap(*Reduced.A, *Reduced.B, C);
    }
    if (!Gap.Ran) {
      C.M = Pair.OrigModule;
      Gap = attributeRuleGap(*Pair.Orig, *Pair.Opt, C);
    }
    R.GapRan = Gap.Ran;
    R.GapDiverged = Gap.Diverged;
    R.GapNodeA = Gap.NodeA;
    R.GapNodeB = Gap.NodeB;
    R.MissingRuleMask = Gap.MissingRuleMask;
    R.MissingRule = Gap.MissingRule;
    R.ClosedByAllRules = Gap.ClosedByAllRules;
  }
  return R;
}
