//===- DifferentialTester.cpp - Interpreter-backed witness search -------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "triage/DifferentialTester.h"

#include "ir/Module.h"
#include "support/Hashing.h"

#include <cmath>
#include <cstdio>
#include <set>

using namespace llvmmd;

namespace {

/// The shared string table: what pointer parameters point at. The workload
/// generator feeds pointer parameters to the modeled libc (strlen, atoi),
/// so the boundary set covers empty, numeric, negative-numeric and plain
/// text strings.
const char *const StringTable[] = {
    "", "0", "7", "-42", "123", "probe", "hello world", "999999999",
};
constexpr unsigned NumStrings = sizeof(StringTable) / sizeof(StringTable[0]);

/// Integer boundary values; truncated to the parameter width at resolve
/// time. Small values dominate because generated loop trip counts are
/// masked to small ranges.
const int64_t IntBoundary[] = {
    0,    1,   -1,    2,     -2,     3,     5,          7,           8,
    15,   16,  17,    -16,   31,     64,    127,        -128,        255,
    -256, 1024, 32767, -32768, 2147483647, -2147483648LL, 4294967295LL,
};
constexpr unsigned NumIntBoundary = sizeof(IntBoundary) / sizeof(IntBoundary[0]);

/// Float boundaries, including catastrophic-cancellation magnitudes that
/// witness reassociation bugs ((1e16 + 1) + 2 != 1e16 + (1 + 2)).
const double FloatBoundary[] = {
    0.0, 1.0, -1.0, 2.0, 0.5, -0.5, 3.0, 0.25, 1e16, -1e16, 1e-3, 100.0,
};
constexpr unsigned NumFloatBoundary =
    sizeof(FloatBoundary) / sizeof(FloatBoundary[0]);

/// Value equality with triage semantics: NaNs of any payload are equal
/// (both sides failed the same way), pointers are compared by the caller's
/// policy, integers exactly.
bool scalarEquals(const RtValue &A, const RtValue &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case RtValue::Kind::Int:
    return A.Int == B.Int;
  case RtValue::Kind::Float:
    if (std::isnan(A.Float) && std::isnan(B.Float))
      return true;
    return A.Float == B.Float;
  case RtValue::Kind::Ptr:
    return A.Ptr == B.Ptr;
  }
  return false;
}

std::string renderValue(const RtValue &V) {
  char Buf[64];
  switch (V.K) {
  case RtValue::Kind::Int:
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V.Int));
    break;
  case RtValue::Kind::Float:
    std::snprintf(Buf, sizeof(Buf), "%.17g", V.Float);
    break;
  case RtValue::Kind::Ptr:
    std::snprintf(Buf, sizeof(Buf), "ptr:0x%llx",
                  static_cast<unsigned long long>(V.Ptr));
    break;
  }
  return Buf;
}

} // namespace

DifferentialTester::DifferentialTester(const Module &MA, const Module &MB,
                                       uint64_t StepBudget)
    : IA(MA, StepBudget), IB(MB, StepBudget) {
  StrAddrsA.reserve(NumStrings);
  StrAddrsB.reserve(NumStrings);
  for (unsigned I = 0; I < NumStrings; ++I) {
    StrAddrsA.push_back(IA.materializeString(StringTable[I]));
    StrAddrsB.push_back(IB.materializeString(StringTable[I]));
  }
  std::set<std::string> NamesA, NamesB;
  for (const auto &G : MA.globals())
    NamesA.insert(G->getName());
  for (const auto &G : MB.globals())
    NamesB.insert(G->getName());
  CompareMemory = NamesA == NamesB;
}

RtValue DifferentialTester::resolve(const AbstractArg &Arg, bool SideA) const {
  switch (Arg.K) {
  case AbstractArg::Kind::Int:
    return RtValue::makeInt(Arg.Int);
  case AbstractArg::Kind::Float:
    return RtValue::makeFloat(Arg.Float);
  case AbstractArg::Kind::Str:
    return RtValue::makePtr(SideA ? StrAddrsA[Arg.StrIdx]
                                  : StrAddrsB[Arg.StrIdx]);
  case AbstractArg::Kind::Null:
    return RtValue::makePtr(0);
  }
  return RtValue::makeInt(0);
}

std::vector<AbstractInput>
DifferentialTester::buildCorpus(const Function &F, unsigned MaxInputs,
                                const CorpusBias &Bias) {
  const FunctionType *FTy = F.getFunctionType();
  unsigned NumParams = FTy->getNumParams();
  std::vector<AbstractInput> Corpus;
  if (MaxInputs == 0)
    return Corpus;
  if (NumParams == 0) {
    // One run fully determines a parameterless function.
    Corpus.emplace_back();
    return Corpus;
  }

  // An all-zero bias must reproduce the historical signature-only corpus
  // byte for byte (same seed, same selection logic), so cached witnesses
  // and goldens from before profile awareness stay valid.
  const bool Biased = Bias.LibcPct || Bias.FloatPct || Bias.GlobalPct;
  // Boundary-phase rotations: start float parameters inside the
  // cancellation-magnitude region (1e16 family) and pointer parameters at
  // the numeric strings when the module leans that way. Up to half a table.
  const uint64_t FloatRot = (Bias.FloatPct * NumFloatBoundary) / 200;
  const uint64_t StrRot = (Bias.LibcPct * NumStrings) / 200;
  // Null pointers trap (and are skipped) on libc-shaped code; spend less of
  // the corpus on them the more string traffic the module has.
  const unsigned NullPct = Bias.LibcPct >= 50 ? 2 : Bias.LibcPct >= 20 ? 5 : 10;

  auto MakeArg = [&](Type *Ty, uint64_t Ordinal, bool Random,
                     SplitMixRng &Rng) {
    AbstractArg A;
    if (Ty->isFloat()) {
      A.K = AbstractArg::Kind::Float;
      if (Random && Biased && Rng.chance(Bias.FloatPct)) {
        // Catastrophic-cancellation shape: a huge magnitude plus a small
        // perturbation, the inputs that witness reassociation bugs.
        A.Float = (Rng.chance(50) ? 1e16 : -1e16) +
                  static_cast<double>(Rng.range(-4, 4));
      } else {
        A.Float = Random ? FloatBoundary[Rng.below(NumFloatBoundary)] *
                               static_cast<double>(Rng.range(-4, 4))
                         : FloatBoundary[(Ordinal + FloatRot) %
                                         NumFloatBoundary];
      }
    } else if (Ty->isPointer()) {
      // Strings only in the boundary phase; a rare null in the random
      // phase (null dereferences trap and are skipped).
      if (Random && Rng.chance(NullPct)) {
        A.K = AbstractArg::Kind::Null;
      } else {
        A.K = AbstractArg::Kind::Str;
        if (Random && Biased && Rng.chance(Bias.LibcPct)) {
          // Numeric and long strings exercise atoi/strlen paths hardest.
          static const unsigned LibcShaped[] = {1, 2, 3, 4, 7};
          A.StrIdx = LibcShaped[Rng.below(5)];
        } else {
          A.StrIdx = Random
                         ? static_cast<unsigned>(Rng.below(NumStrings))
                         : static_cast<unsigned>((Ordinal + StrRot) %
                                                 NumStrings);
        }
      }
    } else {
      unsigned Bits = Ty->isInteger() ? Ty->getBitWidth() : 64;
      int64_t Raw;
      if (Random && Biased && Rng.chance(Bias.GlobalPct)) {
        // Index-shaped: global-heavy code mostly feeds integers into GEPs
        // over fixed-size global arrays; small non-negative values observe
        // them, huge ones trap and are skipped.
        Raw = Rng.range(0, 16);
      } else if (Random) {
        Raw = static_cast<int64_t>(Rng.next());
      } else {
        uint64_t Idx = Ordinal % NumIntBoundary;
        // Global-heavy boundary walk: interleave the small non-negative
        // head of the table (entries 0..8 are 0,1,-1,2,-2,3,5,7,8) so
        // index-shaped values appear early for every parameter.
        if (Bias.GlobalPct >= 50 && (Ordinal & 1))
          Idx = Ordinal % 9;
        Raw = IntBoundary[Idx];
      }
      A.K = AbstractArg::Kind::Int;
      A.Int = signExtend(Raw, Bits);
    }
    return A;
  };

  // Boundary phase: walk each parameter through its boundary list at a
  // different (coprime) stride so combinations decorrelate. Then a seeded
  // random phase up to MaxInputs. Both are pure functions of the signature
  // and the bias (the seed folds the bias in so differently-biased corpora
  // decorrelate too).
  SplitMixRng Rng(Biased ? hashCombine(hashCombine(hashCombine(
                                           0x7121a6eULL, Bias.LibcPct),
                                       Bias.FloatPct),
                                       Bias.GlobalPct)
                         : 0x7121a6eULL);
  unsigned BoundaryPhase = MaxInputs - MaxInputs / 3;
  for (unsigned K = 0; K < MaxInputs; ++K) {
    bool Random = K >= BoundaryPhase;
    AbstractInput In;
    In.reserve(NumParams);
    for (unsigned P = 0; P < NumParams; ++P) {
      uint64_t Ordinal = static_cast<uint64_t>(K) * (2 * P + 1) + P;
      In.push_back(MakeArg(FTy->getParamType(P), Ordinal, Random, Rng));
    }
    Corpus.push_back(std::move(In));
  }
  return Corpus;
}

std::vector<std::string>
DifferentialTester::renderInput(const AbstractInput &In) {
  std::vector<std::string> Out;
  Out.reserve(In.size());
  for (size_t I = 0; I < In.size(); ++I) {
    std::string S = "arg" + std::to_string(I) + "=";
    char Buf[64];
    switch (In[I].K) {
    case AbstractArg::Kind::Int:
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(In[I].Int));
      S += Buf;
      break;
    case AbstractArg::Kind::Float:
      std::snprintf(Buf, sizeof(Buf), "%.17g", In[I].Float);
      S += Buf;
      break;
    case AbstractArg::Kind::Str:
      S += '"';
      S += StringTable[In[I].StrIdx];
      S += '"';
      break;
    case AbstractArg::Kind::Null:
      S += "null";
      break;
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

int DifferentialTester::compareOnce(const Function &A, const Function &B,
                                    const AbstractInput &In,
                                    std::string *Divergence) {
  // No observation channel at all (void or pointer return, and memory not
  // comparable): the run can confirm nothing, so it must count as skipped
  // — otherwise a pair with zero observable behavior would be classified
  // suspected-false-alarm instead of inconclusive.
  Type *RetTy = A.getReturnType();
  if ((RetTy->isVoid() || RetTy->isPointer()) && !CompareMemory)
    return -1;
  std::vector<RtValue> ArgsA, ArgsB;
  ArgsA.reserve(In.size());
  ArgsB.reserve(In.size());
  for (const AbstractArg &Arg : In) {
    ArgsA.push_back(resolve(Arg, /*SideA=*/true));
    ArgsB.push_back(resolve(Arg, /*SideA=*/false));
  }
  ExecResult RA = IA.run(A, ArgsA);
  ExecResult RB = IB.run(B, ArgsB);
  // Termination and absence of runtime errors are assumed by the paper's
  // guarantee: a trap / step-limit / unsupported run on either side is
  // evidence of nothing and must never become a witness.
  if (RA.Status != ExecStatus::OK || RB.Status != ExecStatus::OK)
    return -1;

  if (!RetTy->isVoid() && !RetTy->isPointer()) {
    // Pointer returns are never compared: allocation addresses are an
    // artifact of the interpreter, not observable program behavior.
    if (RA.HasValue != RB.HasValue ||
        (RA.HasValue && !scalarEquals(RA.Value, RB.Value))) {
      if (Divergence)
        *Divergence = "return: " + renderValue(RA.Value) +
                      " != " + renderValue(RB.Value);
      return 1;
    }
  }
  if (CompareMemory) {
    auto MemA = IA.globalMemory();
    auto MemB = IB.globalMemory();
    if (MemA != MemB) {
      if (Divergence) {
        *Divergence = "global memory differs";
        for (const auto &[Name, Bytes] : MemA) {
          auto It = MemB.find(Name);
          if (It == MemB.end() || It->second != Bytes) {
            *Divergence = "global '" + Name + "' differs";
            break;
          }
        }
      }
      return 1;
    }
  }
  return 0;
}

DiffOutcome DifferentialTester::test(const Function &A, const Function &B,
                                     unsigned MaxInputs,
                                     const CorpusBias &Bias) {
  DiffOutcome Out;
  std::vector<AbstractInput> Corpus = buildCorpus(A, MaxInputs, Bias);
  for (const AbstractInput &In : Corpus) {
    std::string Divergence;
    int R = compareOnce(A, B, In, &Divergence);
    if (R < 0) {
      ++Out.Skipped;
      continue;
    }
    ++Out.Tried;
    if (R > 0) {
      Out.HasWitness = true;
      Out.Witness = In;
      Out.WitnessRendered = renderInput(In);
      Out.Divergence = std::move(Divergence);
      Out.Classification = TriageClassification::MiscompileWitnessed;
      return Out;
    }
  }
  Out.Classification = Out.Tried == 0
                           ? TriageClassification::Inconclusive
                           : TriageClassification::SuspectedFalseAlarm;
  return Out;
}
