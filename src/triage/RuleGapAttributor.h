//===- RuleGapAttributor.h - Name the rule a false alarm misses -*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explains a (reduced) false alarm in the validator's own vocabulary.
/// Two mechanisms, both deterministic:
///
///  * Structural diff — build both functions into one shared value graph,
///    normalize to fixpoint under the configured rules, then walk the two
///    root cones in lockstep and report the first node pair whose heads
///    (kind, opcode, predicate, type, scalar payload, arity) disagree:
///    the exact spot where normalization got stuck.
///  * Rule probing — re-validate the pair with each disabled rule family
///    (Rules.h) enabled one at a time; the first single family whose
///    addition makes the pair validate *is* the gap, checked rather than
///    guessed. When no single family suffices, RS_All is probed so "more
///    than one extension needed" is distinguished from "no rule we have
///    helps" (a candidate for a new rule set — the paper's §5 discussion).
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_TRIAGE_RULEGAPATTRIBUTOR_H
#define LLVMMD_TRIAGE_RULEGAPATTRIBUTOR_H

#include "normalize/Rules.h"

#include <string>

namespace llvmmd {

class Function;

/// Stable lowercase name of one rule family ("boolean", "phi-simplify",
/// "eta-mu", "const-fold", "canonicalize", "load-store", "commuting",
/// "libc", "float-fold", "global-fold"); "?" for non-single-family masks.
const char *getRuleSetName(RuleSet RS);

struct RuleGapOutcome {
  bool Ran = false;
  /// A head-diverging node pair was found (false when the cones are
  /// head-congruent but unmerged, e.g. cyclic μ values).
  bool Diverged = false;
  std::string NodeA, NodeB; ///< rendered heads of the first diverging pair
  /// The single disabled family whose addition validates the pair (0/""
  /// when none does).
  unsigned MissingRuleMask = 0;
  std::string MissingRule;
  /// No single family sufficed but RS_All validates the pair.
  bool ClosedByAllRules = false;
};

/// Diffs and probes the rejected pair under \p Rules (Rules.M must point
/// at the module providing \p A's globals).
RuleGapOutcome attributeRuleGap(const Function &A, const Function &B,
                                const RuleConfig &Rules);

} // namespace llvmmd

#endif // LLVMMD_TRIAGE_RULEGAPATTRIBUTOR_H
