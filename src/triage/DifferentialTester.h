//===- DifferentialTester.h - Interpreter-backed witness search -*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing of a function pair against the reference
/// Interpreter: run both sides on the same inputs from fresh memory and
/// compare the return value and the final global memory. The input corpus
/// is a pure function of the signature and the corpus size — boundary
/// values first (the workload generator's loops mask trip counts to small
/// ranges, libc patterns read NUL-terminated strings), then a seeded
/// pseudo-random fill — so witnesses are deterministic across runs and
/// thread counts.
///
/// Soundness of the skip rule: the paper's guarantee assumes termination
/// and absence of runtime errors, so a run that traps or exhausts the step
/// budget on either side says nothing about equivalence. Such inputs are
/// counted as skipped and can never produce a witness. Pointer-typed
/// return values are likewise never compared (allocation addresses are not
/// observable program behavior); memory is compared through the named
/// global regions only.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_TRIAGE_DIFFERENTIALTESTER_H
#define LLVMMD_TRIAGE_DIFFERENTIALTESTER_H

#include "ir/Interpreter.h"
#include "triage/Triage.h"

#include <cstdint>
#include <string>
#include <vector>

namespace llvmmd {

class Function;
class Module;

/// An input value in corpus form, independent of either interpreter's
/// address space: string arguments are indices into the shared string
/// table and are resolved to per-side addresses at run time.
struct AbstractArg {
  enum class Kind : uint8_t { Int, Float, Str, Null } K = Kind::Int;
  int64_t Int = 0;
  double Float = 0;
  unsigned StrIdx = 0;
};

/// One corpus entry: a value per parameter.
using AbstractInput = std::vector<AbstractArg>;

/// The outcome of one differential-testing campaign over a pair.
struct DiffOutcome {
  TriageClassification Classification = TriageClassification::NotRun;
  unsigned Tried = 0;
  unsigned Skipped = 0;
  bool HasWitness = false;
  AbstractInput Witness;                    ///< the diverging input
  std::vector<std::string> WitnessRendered; ///< "argN=value" per parameter
  std::string Divergence;                   ///< what differed
};

class DifferentialTester {
public:
  /// Interprets side-A functions against \p MA and side-B functions
  /// against \p MB. The string table is materialized into both address
  /// spaces at construction.
  DifferentialTester(const Module &MA, const Module &MB,
                     uint64_t StepBudget = 1u << 20);

  /// Runs the deterministic corpus (at most \p MaxInputs entries) over the
  /// pair, stopping at the first witness. \p Bias skews the corpus toward a
  /// benchmark's feature mix (see buildCorpus); the default all-zero bias
  /// reproduces the signature-only corpus exactly.
  DiffOutcome test(const Function &A, const Function &B, unsigned MaxInputs,
                   const CorpusBias &Bias = CorpusBias());

  /// Replays one input; returns 1 when the pair diverges on it, 0 when
  /// both sides agree, -1 when either side was non-OK (skipped). Fills
  /// \p Divergence on 1.
  int compareOnce(const Function &A, const Function &B,
                  const AbstractInput &In, std::string *Divergence = nullptr);

  /// Builds the deterministic corpus for \p F's signature: boundary-value
  /// assignments first, then seeded pseudo-random fill, \p MaxInputs total
  /// (a single empty entry for zero-parameter functions). A non-zero
  /// \p Bias (typically mined from the benchmark module, see
  /// mineCorpusBias) skews both phases toward the profile's character —
  /// libc-heavy modules walk the string table numeric-first and draw fewer
  /// null pointers, float-heavy modules lead with catastrophic-cancellation
  /// magnitudes, global-heavy modules weight small non-negative
  /// index-shaped integers. Still a pure function of (signature, MaxInputs,
  /// Bias), so witnesses stay deterministic across runs and thread counts.
  static std::vector<AbstractInput> buildCorpus(const Function &F,
                                                unsigned MaxInputs,
                                                const CorpusBias &Bias =
                                                    CorpusBias());

  /// Renders one corpus entry as "argN=value" strings.
  static std::vector<std::string> renderInput(const AbstractInput &In);

private:
  RtValue resolve(const AbstractArg &Arg, bool SideA) const;

  Interpreter IA, IB;
  std::vector<uint64_t> StrAddrsA, StrAddrsB;
  /// Global memory is only comparable when both modules define the same
  /// named regions; otherwise memory divergence is not claimed.
  bool CompareMemory = true;
};

} // namespace llvmmd

#endif // LLVMMD_TRIAGE_DIFFERENTIALTESTER_H
