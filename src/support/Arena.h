//===- Arena.h - Bump-pointer allocation with scoped teardown ---*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena in the shady `IrArena` / clang `ASTContext` mold:
/// objects whose lifetimes end together are allocated from one growing
/// chain of slabs, so teardown is a handful of frees instead of one free
/// per IR node, allocation is a pointer bump on the hot path, and objects
/// created together sit next to each other in memory (clone and
/// fingerprint walks touch consecutive cache lines instead of chasing
/// malloc's placement).
///
/// Unlike a raw bump allocator, `create<T>` registers the object's
/// destructor (only when `T` is not trivially destructible) in an
/// intrusive LIFO list that itself lives inside the arena, so arena-owned
/// objects may hold `std::string` / `std::vector` members: `reset()` and
/// the arena destructor run the registered destructors in reverse
/// construction order, then release or recycle the slabs.
///
/// Thread-safety: none. Every arena in this codebase is confined to one
/// mutating thread at a time by a documented ownership rule (see Module /
/// Function / Context); callers that share an arena across threads must
/// bring their own lock, as Context does for its interning arena.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_SUPPORT_ARENA_H
#define LLVMMD_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace llvmmd {

class Arena {
public:
  /// \p FirstSlabBytes is the usable capacity of the first slab; subsequent
  /// slabs double up to MaxSlabBytes. Allocation is lazy — an arena that
  /// never allocates costs three pointers.
  explicit Arena(size_t FirstSlabBytes = 4096)
      : NextSlabBytes(FirstSlabBytes < MinSlabBytes ? MinSlabBytes
                                                    : FirstSlabBytes) {}
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena();

  /// Returns \p Bytes of storage aligned to \p Align (a power of two).
  /// Never returns null; allocation failure terminates like `new` would.
  void *allocate(size_t Bytes, size_t Align);

  /// Allocates and constructs a \p T. When \p T is not trivially
  /// destructible its destructor is registered and will run (in reverse
  /// construction order) at reset() or arena destruction. The static type
  /// is what gets destroyed, so pass the most-derived type — there is no
  /// virtual dispatch on teardown.
  template <typename T, typename... ArgTys> T *create(ArgTys &&...Args) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = ::new (Mem) T(std::forward<ArgTys>(Args)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      registerDtor(Obj, [](void *P) { static_cast<T *>(P)->~T(); });
    return Obj;
  }

  /// Runs all registered destructors (LIFO), then recycles the slabs: the
  /// largest slab is kept for reuse so a reset-heavy lifecycle (stepwise
  /// snapshot, revert, re-clone) stops hitting malloc entirely once warm.
  void reset();

  /// Bytes handed out to callers since construction/reset (excludes
  /// destructor bookkeeping and slab padding).
  size_t bytesAllocated() const { return BytesAllocated; }
  /// Total usable capacity of all live slabs.
  size_t bytesReserved() const { return BytesReserved; }
  size_t numSlabs() const;

private:
  static constexpr size_t MinSlabBytes = 256;
  static constexpr size_t MaxSlabBytes = 64 * 1024;

  struct Slab {
    Slab *Prev;
    size_t Capacity; ///< usable bytes following this header
  };
  struct DtorNode {
    DtorNode *Prev;
    void (*Destroy)(void *);
    void *Obj;
  };

  void registerDtor(void *Obj, void (*Destroy)(void *)) {
    auto *N = static_cast<DtorNode *>(
        allocate(sizeof(DtorNode), alignof(DtorNode)));
    N->Prev = Dtors;
    N->Destroy = Destroy;
    N->Obj = Obj;
    Dtors = N;
  }

  /// Starts a fresh slab with at least \p MinBytes of usable capacity and
  /// makes it the bump target.
  void grow(size_t MinBytes);

  Slab *Cur = nullptr;     ///< newest slab; Prev chains to older ones
  char *BumpPtr = nullptr; ///< next free byte in Cur
  char *BumpEnd = nullptr; ///< one past Cur's usable range
  DtorNode *Dtors = nullptr;
  size_t NextSlabBytes;
  size_t BytesAllocated = 0;
  size_t BytesReserved = 0;
};

} // namespace llvmmd

#endif // LLVMMD_SUPPORT_ARENA_H
