//===- Trace.h - Phase span tracing (Chrome trace-event JSON) ---*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A span tracer for answering "where did the time go": every layer wraps
/// its phases (parse/ingest, optimize per pass, validate per pass, triage,
/// store load/checkpoint/merge, queue wait, fleet dispatch/requeue) in
/// `TraceSpan` RAII guards, and an enabled tracer collects them as
/// complete events for export as Chrome trace-event JSON — load the file
/// at `ui.perfetto.dev` (or chrome://tracing) to see the per-thread
/// timeline.
///
/// Disabled (the default) a span is two relaxed atomic loads — no clock
/// reads, no allocation. Enabled, span completion appends one fixed-size
/// event under a global mutex; tracing is an opt-in diagnostic mode, not
/// a hot-path citizen like the metrics registry.
///
/// Span names must be string literals (or otherwise outlive the tracer):
/// events store the pointer, not a copy, so per-item detail goes in the
/// `Arg` string, which *is* copied.
///
/// Timestamps are microseconds on the steady clock relative to
/// `traceEnable()`; they never enter verdict-bearing reports — the trace
/// file is its own channel, and suite JSON is byte-identical with tracing
/// on or off.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_SUPPORT_TRACE_H
#define LLVMMD_SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace llvmmd {

/// Starts collecting spans (clearing any prior collection). Timestamps
/// are relative to this call.
void traceEnable();

/// Stops collecting. Collected events remain available to write.
void traceDisable();

/// True when spans are being collected.
bool traceEnabled();

/// Number of events collected so far (tests).
size_t traceEventCount();

/// Renders collected events as Chrome trace-event JSON:
/// `{"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...,
///   "pid": ..., "tid": ..., "cat": ...}, ...]}`.
std::string traceToJSON();

/// Writes `traceToJSON()` to \p Path. Returns false and sets \p Error on
/// I/O failure.
bool traceWriteFile(const std::string &Path, std::string *Error = nullptr);

/// Records one complete event directly (for spans whose start/end don't
/// nest lexically, e.g. queue wait measured across threads).
/// \p Name and \p Cat must be string literals.
void traceCompleteEvent(const char *Name, const char *Cat, uint64_t StartUs,
                        uint64_t DurUs, const std::string &Arg = "");

/// Microseconds since traceEnable() on the steady clock (0 if disabled).
uint64_t traceNowUs();

/// RAII span: captures the clock at construction and records a complete
/// event at destruction, when tracing is enabled. Name/Cat must be
/// string literals.
class TraceSpan {
public:
  TraceSpan(const char *Name, const char *Cat) : Name(Name), Cat(Cat) {
    if (traceEnabled()) {
      Active = true;
      StartUs = traceNowUs();
    }
  }
  TraceSpan(const char *Name, const char *Cat, std::string Arg)
      : TraceSpan(Name, Cat) {
    if (Active)
      this->Arg = std::move(Arg);
  }
  ~TraceSpan() {
    if (Active)
      traceCompleteEvent(Name, Cat, StartUs, traceNowUs() - StartUs, Arg);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  const char *Name;
  const char *Cat;
  std::string Arg;
  uint64_t StartUs = 0;
  bool Active = false;
};

} // namespace llvmmd

#endif // LLVMMD_SUPPORT_TRACE_H
