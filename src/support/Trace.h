//===- Trace.h - Phase span tracing (Chrome trace-event JSON) ---*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A span tracer for answering "where did the time go": every layer wraps
/// its phases (parse/ingest, optimize per pass, validate per pass, triage,
/// store load/checkpoint/merge, queue wait, fleet dispatch/requeue) in
/// `TraceSpan` RAII guards, and an enabled tracer collects them as
/// complete events for export as Chrome trace-event JSON — load the file
/// at `ui.perfetto.dev` (or chrome://tracing) to see the per-thread
/// timeline.
///
/// Disabled (the default) a span is two relaxed atomic loads — no clock
/// reads, no allocation. Enabled, span completion appends one event under
/// a global mutex; tracing is an opt-in diagnostic mode, not a hot-path
/// citizen like the metrics registry.
///
/// Spans carry a **trace id**: a nonzero 64-bit token minted at the front
/// door (router or `batch_validate`) and carried across the wire so one
/// fleet job renders as a single flame across processes. Events record
/// the process-global "current" trace id at span start; contexts with
/// concurrent jobs in flight (fleet dispatchers) pass an explicit id
/// instead. Events can be serialized from a worker and ingested by the
/// router: timestamps ride the steady clock (CLOCK_MONOTONIC, machine
/// -wide on Linux), so a foreign event's epoch-anchored times rebase
/// exactly onto the local trace epoch, and each event keeps its origin
/// pid so Perfetto groups the flame per process.
///
/// Timestamps are microseconds on the steady clock relative to
/// `traceEnable()`; they never enter verdict-bearing reports — the trace
/// file is its own channel, and suite JSON is byte-identical with tracing
/// on or off.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_SUPPORT_TRACE_H
#define LLVMMD_SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace llvmmd {

/// Starts collecting spans (clearing any prior collection). Timestamps
/// are relative to this call.
void traceEnable();

/// Stops collecting. Collected events remain available to write.
void traceDisable();

/// True when spans are being collected.
bool traceEnabled();

/// Number of events collected so far (tests, and the snapshot index for
/// `traceSerializeEvents`).
size_t traceEventCount();

/// Renders collected events as Chrome trace-event JSON:
/// `{"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...,
///   "pid": ..., "tid": ..., "cat": ...}, ...]}`. Events with a nonzero
/// trace id carry it as `args.trace_id` ("0x..." string).
std::string traceToJSON();

/// Writes `traceToJSON()` to \p Path. Returns false and sets \p Error on
/// I/O failure.
bool traceWriteFile(const std::string &Path, std::string *Error = nullptr);

/// Records one complete event directly (for spans whose start/end don't
/// nest lexically, e.g. queue wait measured across threads). Tagged with
/// the current trace id. \p Name and \p Cat must be string literals.
void traceCompleteEvent(const char *Name, const char *Cat, uint64_t StartUs,
                        uint64_t DurUs, const std::string &Arg = "");

/// Like `traceCompleteEvent` but tagged with an explicit \p TraceId, for
/// contexts with several traced jobs in flight at once (fleet dispatcher
/// threads) where the process-global current id would be ambiguous.
void traceCompleteEventForTrace(uint64_t TraceId, const char *Name,
                                const char *Cat, uint64_t StartUs,
                                uint64_t DurUs, const std::string &Arg = "");

/// Mints a fresh nonzero trace id (unique within and across the processes
/// of one fleet with overwhelming probability: pid, clock and a counter
/// are folded through the fingerprint hash).
uint64_t traceMintTraceId();

/// Sets the process-global current trace id; 0 clears it. Sound wherever
/// a single job owns the traced phases at a time — the server's executor
/// thread (single-caller engine contract) and `batch_validate`.
void traceSetCurrentTraceId(uint64_t Id);

/// The process-global current trace id (0 when none).
uint64_t traceCurrentTraceId();

/// Serializes events `[FromIndex, end)` into a self-contained binary blob
/// carrying this process's pid and steady-clock epoch, so another process
/// on the same machine can `traceIngestEvents` and rebase timestamps onto
/// its own epoch. Returns an empty-payload blob when the range is empty.
std::string traceSerializeEvents(size_t FromIndex);

/// Merges a blob produced by `traceSerializeEvents` in another process
/// into the local collection, rebasing timestamps (negative results clamp
/// to 0) and preserving each event's origin pid and trace id. Returns
/// false on malformed input or when tracing is disabled.
bool traceIngestEvents(const std::string &Blob, std::string *Error = nullptr);

/// Microseconds since traceEnable() on the steady clock (0 if disabled).
uint64_t traceNowUs();

/// " trace 0x..." log-line suffix joining a slow-job warning or per-job
/// error to its flame (grep the hex in the trace JSON's args.trace_id);
/// empty for untraced jobs so existing log shapes are unchanged.
std::string traceLogTag(uint64_t TraceId);

/// RAII span: captures the clock and the current trace id at construction
/// and records a complete event at destruction, when tracing is enabled.
/// Name/Cat must be string literals.
class TraceSpan {
public:
  TraceSpan(const char *Name, const char *Cat) : Name(Name), Cat(Cat) {
    if (traceEnabled()) {
      Active = true;
      StartUs = traceNowUs();
      TraceId = traceCurrentTraceId();
    }
  }
  TraceSpan(const char *Name, const char *Cat, std::string Arg)
      : TraceSpan(Name, Cat) {
    if (Active)
      this->Arg = std::move(Arg);
  }
  /// Span under an explicit trace id (concurrent-dispatch contexts).
  TraceSpan(const char *Name, const char *Cat, uint64_t ExplicitTraceId,
            std::string Arg)
      : TraceSpan(Name, Cat) {
    if (Active) {
      TraceId = ExplicitTraceId;
      this->Arg = std::move(Arg);
    }
  }
  ~TraceSpan() {
    if (Active)
      traceCompleteEventForTrace(TraceId, Name, Cat, StartUs,
                                 traceNowUs() - StartUs, Arg);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  const char *Name;
  const char *Cat;
  std::string Arg;
  uint64_t StartUs = 0;
  uint64_t TraceId = 0;
  bool Active = false;
};

} // namespace llvmmd

#endif // LLVMMD_SUPPORT_TRACE_H
