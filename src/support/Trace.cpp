//===- Trace.cpp - Phase span tracing (Chrome trace-event JSON) -----------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Hashing.h"

#include <cstdio>
#include <mutex>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace llvmmd {

namespace {

struct TraceEvent {
  std::string Name;
  std::string Cat;
  std::string Arg;
  uint64_t TraceId;
  uint64_t StartUs;
  uint64_t DurUs;
  uint32_t Tid;
  uint64_t Pid; // 0 = this process (rendered as getpid()); else origin pid
};

std::atomic<bool> Enabled{false};
std::atomic<uint64_t> CurrentTraceId{0};
std::mutex EventsLock;
std::vector<TraceEvent> Events; // guarded by EventsLock
std::chrono::steady_clock::time_point Epoch;

uint32_t threadTid() {
  static std::atomic<uint32_t> NextTid{1};
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

uint64_t localPid() {
#ifndef _WIN32
  return static_cast<uint64_t>(::getpid());
#else
  return 0;
#endif
}

/// The trace epoch as absolute steady-clock microseconds. CLOCK_MONOTONIC
/// has one origin machine-wide, so two processes' epochs expressed this
/// way differ by exactly the wall time between their traceEnable() calls —
/// that difference is the rebase offset for ingested events.
uint64_t epochAbsUsLocked() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Epoch.time_since_epoch())
          .count());
}

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void recordEvent(uint64_t TraceId, const char *Name, const char *Cat,
                 uint64_t StartUs, uint64_t DurUs, const std::string &Arg) {
  if (!traceEnabled())
    return;
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Arg = Arg;
  E.TraceId = TraceId;
  E.StartUs = StartUs;
  E.DurUs = DurUs;
  E.Tid = threadTid();
  E.Pid = 0;
  std::lock_guard<std::mutex> Guard(EventsLock);
  Events.push_back(std::move(E));
}

// Span-blob wire tags (independent of the server protocol version: the
// blob is opaque payload inside a JobDone frame).
constexpr char BlobMagic[4] = {'L', 'M', 'T', 'R'};
constexpr uint32_t BlobVersion = 1;

} // namespace

void traceEnable() {
  std::lock_guard<std::mutex> Guard(EventsLock);
  Events.clear();
  Events.reserve(4096);
  Epoch = std::chrono::steady_clock::now();
  Enabled.store(true, std::memory_order_release);
}

void traceDisable() { Enabled.store(false, std::memory_order_release); }

bool traceEnabled() { return Enabled.load(std::memory_order_acquire); }

size_t traceEventCount() {
  std::lock_guard<std::mutex> Guard(EventsLock);
  return Events.size();
}

uint64_t traceNowUs() {
  if (!traceEnabled())
    return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void traceCompleteEvent(const char *Name, const char *Cat, uint64_t StartUs,
                        uint64_t DurUs, const std::string &Arg) {
  recordEvent(traceCurrentTraceId(), Name, Cat, StartUs, DurUs, Arg);
}

void traceCompleteEventForTrace(uint64_t TraceId, const char *Name,
                                const char *Cat, uint64_t StartUs,
                                uint64_t DurUs, const std::string &Arg) {
  recordEvent(TraceId, Name, Cat, StartUs, DurUs, Arg);
}

uint64_t traceMintTraceId() {
  static std::atomic<uint64_t> Next{1};
  uint64_t Nonce = Next.fetch_add(1, std::memory_order_relaxed);
  uint64_t NowUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  uint64_t Id = hashCombine(hashCombine(localPid(), NowUs), Nonce);
  return Id ? Id : 1;
}

std::string traceLogTag(uint64_t TraceId) {
  if (!TraceId)
    return "";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), " trace 0x%016llx",
                static_cast<unsigned long long>(TraceId));
  return Buf;
}

void traceSetCurrentTraceId(uint64_t Id) {
  CurrentTraceId.store(Id, std::memory_order_release);
}

uint64_t traceCurrentTraceId() {
  return CurrentTraceId.load(std::memory_order_acquire);
}

std::string traceSerializeEvents(size_t FromIndex) {
  std::lock_guard<std::mutex> Guard(EventsLock);
  std::string Out;
  Out.append(BlobMagic, sizeof(BlobMagic));
  appendU32LE(Out, BlobVersion);
  appendU64LE(Out, localPid());
  appendU64LE(Out, epochAbsUsLocked());
  size_t Begin = FromIndex < Events.size() ? FromIndex : Events.size();
  appendU32LE(Out, static_cast<uint32_t>(Events.size() - Begin));
  for (size_t I = Begin; I < Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    appendU64LE(Out, E.TraceId);
    appendU64LE(Out, E.StartUs);
    appendU64LE(Out, E.DurUs);
    appendU32LE(Out, E.Tid);
    appendU64LE(Out, E.Pid ? E.Pid : localPid());
    appendLPString(Out, E.Name);
    appendLPString(Out, E.Cat);
    appendLPString(Out, E.Arg);
  }
  return Out;
}

bool traceIngestEvents(const std::string &Blob, std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (!traceEnabled())
    return Fail("tracing disabled");
  const char *Data = Blob.data();
  size_t Size = Blob.size(), Cur = 0;
  if (Size < sizeof(BlobMagic) ||
      std::string(Data, sizeof(BlobMagic)) !=
          std::string(BlobMagic, sizeof(BlobMagic)))
    return Fail("bad span blob magic");
  Cur = sizeof(BlobMagic);
  uint32_t Version = 0, Count = 0;
  uint64_t ForeignPid = 0, ForeignEpochUs = 0;
  if (!readU32LE(Data, Size, Cur, Version) || Version != BlobVersion)
    return Fail("unsupported span blob version");
  if (!readU64LE(Data, Size, Cur, ForeignPid) ||
      !readU64LE(Data, Size, Cur, ForeignEpochUs) ||
      !readU32LE(Data, Size, Cur, Count))
    return Fail("truncated span blob header");

  std::lock_guard<std::mutex> Guard(EventsLock);
  // Offset from the foreign epoch to ours, in signed µs; spans that began
  // before our epoch clamp to ts=0 rather than going negative.
  int64_t OffsetUs = static_cast<int64_t>(ForeignEpochUs) -
                     static_cast<int64_t>(epochAbsUsLocked());
  std::vector<TraceEvent> Incoming;
  Incoming.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    TraceEvent E;
    uint64_t Pid = 0;
    uint32_t Tid = 0;
    if (!readU64LE(Data, Size, Cur, E.TraceId) ||
        !readU64LE(Data, Size, Cur, E.StartUs) ||
        !readU64LE(Data, Size, Cur, E.DurUs) ||
        !readU32LE(Data, Size, Cur, Tid) || !readU64LE(Data, Size, Cur, Pid) ||
        !readLPString(Data, Size, Cur, E.Name) ||
        !readLPString(Data, Size, Cur, E.Cat) ||
        !readLPString(Data, Size, Cur, E.Arg))
      return Fail("truncated span blob event");
    int64_t Rebased = static_cast<int64_t>(E.StartUs) + OffsetUs;
    E.StartUs = Rebased > 0 ? static_cast<uint64_t>(Rebased) : 0;
    E.Tid = Tid;
    E.Pid = Pid ? Pid : ForeignPid;
    Incoming.push_back(std::move(E));
  }
  if (Cur != Size)
    return Fail("trailing bytes after span blob events");
  for (TraceEvent &E : Incoming)
    Events.push_back(std::move(E));
  return true;
}

std::string traceToJSON() {
  std::vector<TraceEvent> Snapshot;
  {
    std::lock_guard<std::mutex> Guard(EventsLock);
    Snapshot = Events;
  }
  uint64_t Pid = localPid();
  std::string Out = "{\"traceEvents\": [";
  bool First = true;
  for (const TraceEvent &E : Snapshot) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "{\"name\": \"";
    appendEscaped(Out, E.Name);
    Out += "\", \"cat\": \"";
    appendEscaped(Out, E.Cat);
    Out += "\", \"ph\": \"X\", \"ts\": " + std::to_string(E.StartUs) +
           ", \"dur\": " + std::to_string(E.DurUs) +
           ", \"pid\": " + std::to_string(E.Pid ? E.Pid : Pid) +
           ", \"tid\": " + std::to_string(E.Tid);
    if (!E.Arg.empty() || E.TraceId) {
      Out += ", \"args\": {";
      bool FirstArg = true;
      if (!E.Arg.empty()) {
        Out += "\"detail\": \"";
        appendEscaped(Out, E.Arg);
        Out += "\"";
        FirstArg = false;
      }
      if (E.TraceId) {
        if (!FirstArg)
          Out += ", ";
        char Buf[24];
        std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                      static_cast<unsigned long long>(E.TraceId));
        Out += "\"trace_id\": \"";
        Out += Buf;
        Out += "\"";
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += "], \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool traceWriteFile(const std::string &Path, std::string *Error) {
  std::string Json = traceToJSON();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  int CloseRC = std::fclose(F);
  if (Written != Json.size() || CloseRC != 0) {
    if (Error)
      *Error = "short write to '" + Path + "'";
    return false;
  }
  return true;
}

} // namespace llvmmd
