//===- Trace.cpp - Phase span tracing (Chrome trace-event JSON) -----------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <cstdio>
#include <mutex>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace llvmmd {

namespace {

struct TraceEvent {
  const char *Name;
  const char *Cat;
  std::string Arg;
  uint64_t StartUs;
  uint64_t DurUs;
  uint32_t Tid;
};

std::atomic<bool> Enabled{false};
std::mutex EventsLock;
std::vector<TraceEvent> Events; // guarded by EventsLock
std::chrono::steady_clock::time_point Epoch;

uint32_t threadTid() {
  static std::atomic<uint32_t> NextTid{1};
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

} // namespace

void traceEnable() {
  std::lock_guard<std::mutex> Guard(EventsLock);
  Events.clear();
  Events.reserve(4096);
  Epoch = std::chrono::steady_clock::now();
  Enabled.store(true, std::memory_order_release);
}

void traceDisable() { Enabled.store(false, std::memory_order_release); }

bool traceEnabled() { return Enabled.load(std::memory_order_acquire); }

size_t traceEventCount() {
  std::lock_guard<std::mutex> Guard(EventsLock);
  return Events.size();
}

uint64_t traceNowUs() {
  if (!traceEnabled())
    return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void traceCompleteEvent(const char *Name, const char *Cat, uint64_t StartUs,
                        uint64_t DurUs, const std::string &Arg) {
  if (!traceEnabled())
    return;
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Arg = Arg;
  E.StartUs = StartUs;
  E.DurUs = DurUs;
  E.Tid = threadTid();
  std::lock_guard<std::mutex> Guard(EventsLock);
  Events.push_back(std::move(E));
}

std::string traceToJSON() {
  std::vector<TraceEvent> Snapshot;
  {
    std::lock_guard<std::mutex> Guard(EventsLock);
    Snapshot = Events;
  }
#ifndef _WIN32
  long Pid = static_cast<long>(::getpid());
#else
  long Pid = 0;
#endif
  std::string Out = "{\"traceEvents\": [";
  bool First = true;
  for (const TraceEvent &E : Snapshot) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "{\"name\": \"";
    appendEscaped(Out, E.Name);
    Out += "\", \"cat\": \"";
    appendEscaped(Out, E.Cat);
    Out += "\", \"ph\": \"X\", \"ts\": " + std::to_string(E.StartUs) +
           ", \"dur\": " + std::to_string(E.DurUs) +
           ", \"pid\": " + std::to_string(Pid) +
           ", \"tid\": " + std::to_string(E.Tid);
    if (!E.Arg.empty()) {
      Out += ", \"args\": {\"detail\": \"";
      appendEscaped(Out, E.Arg);
      Out += "\"}";
    }
    Out += "}";
  }
  Out += "], \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool traceWriteFile(const std::string &Path, std::string *Error) {
  std::string Json = traceToJSON();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  int CloseRC = std::fclose(F);
  if (Written != Json.size() || CloseRC != 0) {
    if (Error)
      *Error = "short write to '" + Path + "'";
    return false;
  }
  return true;
}

} // namespace llvmmd
