//===- Telemetry.cpp - Process-wide metrics registry ----------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

namespace llvmmd {

unsigned Counter::shardIndex() {
  // A per-thread id hashed onto the shards; threads created together get
  // distinct shards instead of all hashing to slot 0.
  static std::atomic<unsigned> NextThread{0};
  thread_local unsigned ThreadSlot =
      NextThread.fetch_add(1, std::memory_order_relaxed);
  return ThreadSlot % NumShards;
}

Histogram::Histogram(std::vector<uint64_t> UpperBounds)
    : Bounds(std::move(UpperBounds)),
      BucketCounts(Bounds.size() + 1) {}

std::vector<uint64_t> defaultLatencyBoundsMicros() {
  // Derived by scripts/derive_hist_bounds.py from the committed baseline
  // distributions (bench/baselines/BENCH_scaling*.json: 24 function
  // samples, 4 job samples): quantiles of the two measured populations —
  // per-function validations cluster in 130µs–2ms, whole jobs in
  // 220–320ms — snapped to a readable grid, decade-bridged so no bucket
  // spans more than 10x, with fixed headroom bounds above the observed
  // maximum. Re-run the script when the baselines move. One shared
  // layout for every layer: the fleet roll-up merges same-name
  // histograms bucket-for-bucket, which only works if worker and router
  // agree on the edges.
  return {150,    400,    750,     2000,    20000,    200000,
          250000, 400000, 1000000, 2500000, 10000000, 60000000};
}

struct MetricsRegistry::Family {
  enum Kind { K_Counter, K_Gauge, K_Histogram };
  std::string Name;
  std::string Help;
  int Kind = K_Counter;
  std::unique_ptr<Counter> C;
  std::unique_ptr<Gauge> G;
  std::unique_ptr<Histogram> H;
};

struct MetricsRegistry::Impl {
  mutable std::mutex Lock;
  // deque: stable addresses as families register.
  std::deque<Family> Families;
  std::map<std::string, Family *> ByName;
};

MetricsRegistry::Impl *MetricsRegistry::impl() const {
  static Impl TheImpl;
  return &TheImpl;
}

MetricsRegistry::Family &MetricsRegistry::findOrCreate(const std::string &Name,
                                                       const std::string &Help,
                                                       int Kind) {
  Impl *I = impl();
  std::lock_guard<std::mutex> Guard(I->Lock);
  auto It = I->ByName.find(Name);
  if (It != I->ByName.end())
    return *It->second;
  I->Families.emplace_back();
  Family &F = I->Families.back();
  F.Name = Name;
  F.Help = Help;
  F.Kind = Kind;
  I->ByName[Name] = &F;
  return F;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Help) {
  Family &F = findOrCreate(Name, Help, Family::K_Counter);
  if (!F.C)
    F.C.reset(new Counter());
  return *F.C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name,
                              const std::string &Help) {
  Family &F = findOrCreate(Name, Help, Family::K_Gauge);
  if (!F.G)
    F.G.reset(new Gauge());
  return *F.G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      const std::string &Help,
                                      std::vector<uint64_t> UpperBounds) {
  Family &F = findOrCreate(Name, Help, Family::K_Histogram);
  if (!F.H)
    F.H.reset(new Histogram(std::move(UpperBounds)));
  return *F.H;
}

std::string MetricsRegistry::renderPrometheus() const {
  Impl *I = impl();
  std::vector<Family *> Sorted;
  {
    std::lock_guard<std::mutex> Guard(I->Lock);
    Sorted.reserve(I->ByName.size());
    for (auto &KV : I->ByName)
      Sorted.push_back(KV.second); // std::map: already name-sorted
  }
  std::string Out;
  for (Family *F : Sorted) {
    Out += "# HELP " + F->Name + " " + F->Help + "\n";
    switch (F->Kind) {
    case Family::K_Counter:
      Out += "# TYPE " + F->Name + " counter\n";
      Out += F->Name + " " + std::to_string(F->C ? F->C->value() : 0) + "\n";
      break;
    case Family::K_Gauge:
      Out += "# TYPE " + F->Name + " gauge\n";
      Out += F->Name + " " + std::to_string(F->G ? F->G->value() : 0) + "\n";
      break;
    case Family::K_Histogram: {
      Out += "# TYPE " + F->Name + " histogram\n";
      const Histogram &H = *F->H;
      uint64_t Cumulative = 0;
      for (unsigned B = 0, N = static_cast<unsigned>(H.bounds().size());
           B <= N; ++B) {
        Cumulative += H.bucketCount(B);
        std::string LE =
            B < N ? std::to_string(H.bounds()[B]) : std::string("+Inf");
        Out += F->Name + "_bucket{le=\"" + LE + "\"} " +
               std::to_string(Cumulative) + "\n";
      }
      Out += F->Name + "_sum " + std::to_string(H.sum()) + "\n";
      Out += F->Name + "_count " + std::to_string(H.count()) + "\n";
      break;
    }
    }
  }
  return Out;
}

MetricsRegistry &telemetry() {
  static MetricsRegistry Registry;
  return Registry;
}

} // namespace llvmmd
