//===- Hashing.h - Deterministic hash combinators ---------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic hashing utilities used by the hash-consed value graph
/// and by the optimizer's value-numbering tables. Determinism across runs
/// matters because validation statistics in the benchmark harness must be
/// reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_SUPPORT_HASHING_H
#define LLVMMD_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace llvmmd {

class Function;
class Type;

/// Deterministic hash of a type's *shape* (kind + bit width), not its
/// interned address, so hashes are stable across runs and Contexts. Null
/// hashes to 0. Defined in Hashing.cpp.
uint64_t hashTypeShape(const Type *Ty);

/// Deterministic structural fingerprint of a function body: signature,
/// block/instruction structure, opcodes, predicates, types (by shape, not
/// address), constants, and operand wiring — but *not* the function's name,
/// so a clone fingerprints identically to its source. Two functions with
/// equal fingerprints are structurally identical (modulo a 2^-64 collision),
/// which is what the validation engine's O(1) skip and verdict cache key on.
/// Defined in Hashing.cpp.
uint64_t fingerprintFunction(const Function &F);

/// 64-bit FNV-1a over raw bytes; deterministic across platforms and runs.
inline uint64_t hashBytes(const void *Data, size_t Len,
                          uint64_t Seed = 0xcbf29ce484222325ULL) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// On-disk encoding: fixed-width little-endian integers, independent of host
// byte order, so serialized digests and verdict stores are portable and
// byte-stable across machines. Readers take (buffer, size, cursor) and
// return false instead of reading past the end, which is how the store
// loader turns a truncated file into a clean rejection.
//===----------------------------------------------------------------------===//

inline void appendU32LE(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

inline void appendU64LE(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

inline bool readU32LE(const char *Data, size_t Size, size_t &Cursor,
                      uint32_t &V) {
  if (Size - Cursor < 4 || Cursor > Size)
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<unsigned char>(Data[Cursor + I]))
         << (8 * I);
  Cursor += 4;
  return true;
}

inline bool readU64LE(const char *Data, size_t Size, size_t &Cursor,
                      uint64_t &V) {
  if (Size - Cursor < 8 || Cursor > Size)
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(Data[Cursor + I]))
         << (8 * I);
  Cursor += 8;
  return true;
}

/// Length-prefixed string: u32 LE byte count + raw bytes. Shared by every
/// on-disk/wire format in the project (verdict store, server protocol) so
/// bounds handling lives in exactly one place.
inline void appendLPString(std::string &Out, const std::string &S) {
  appendU32LE(Out, static_cast<uint32_t>(S.size()));
  Out.append(S);
}

inline bool readLPString(const char *Data, size_t Size, size_t &Cursor,
                         std::string &S) {
  uint32_t Len = 0;
  if (!readU32LE(Data, Size, Cursor, Len) || Size - Cursor < Len)
    return false;
  S.assign(Data + Cursor, Len);
  Cursor += Len;
  return true;
}

/// Mixes a 64-bit value into a running hash (splitmix64 finalizer).
inline uint64_t hashCombine(uint64_t H, uint64_t V) {
  V += 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  V = (V ^ (V >> 30)) * 0xbf58476d1ce4e5b9ULL;
  V = (V ^ (V >> 27)) * 0x94d049bb133111ebULL;
  return H ^ (V ^ (V >> 31));
}

inline uint64_t hashString(std::string_view S, uint64_t Seed = 0) {
  return hashBytes(S.data(), S.size(), 0xcbf29ce484222325ULL ^ Seed);
}

/// Deterministic pseudo-random number generator (xorshift128+). Used by the
/// workload generator so that every "benchmark program" is a pure function
/// of its profile seed.
class SplitMixRng {
public:
  explicit SplitMixRng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b9ULL) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Returns true with probability \p Percent / 100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

} // namespace llvmmd

#endif // LLVMMD_SUPPORT_HASHING_H
