//===- Hashing.cpp - Function structural fingerprint -------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"

#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"

#include <cstring>
#include <unordered_map>

using namespace llvmmd;

uint64_t llvmmd::hashTypeShape(const Type *Ty) {
  if (!Ty)
    return 0;
  uint64_t H = hashCombine(1, static_cast<uint64_t>(Ty->getKind()));
  if (Ty->isInteger())
    H = hashCombine(H, Ty->getBitWidth());
  return H;
}

namespace {

uint64_t hashType(const Type *Ty) { return hashTypeShape(Ty); }

/// Mixes one operand reference into \p H. Instructions and arguments use
/// their dense per-function number; constants hash by value, globals and
/// functions by name.
uint64_t hashOperand(uint64_t H, const Value *V,
                     const std::unordered_map<const Value *, uint64_t> &Num) {
  auto It = Num.find(V);
  if (It != Num.end())
    return hashCombine(hashCombine(H, 0x01), It->second);
  switch (V->getKind()) {
  case ValueKind::ConstantInt:
    H = hashCombine(H, 0x02);
    H = hashCombine(H, hashType(V->getType()));
    return hashCombine(H,
                       static_cast<uint64_t>(cast<ConstantInt>(V)->getSExtValue()));
  case ValueKind::ConstantFP: {
    double D = cast<ConstantFP>(V)->getValue();
    uint64_t Bits;
    std::memcpy(&Bits, &D, sizeof(Bits));
    return hashCombine(hashCombine(H, 0x03), Bits);
  }
  case ValueKind::ConstantPointerNull:
    return hashCombine(H, 0x04);
  case ValueKind::UndefValue:
    return hashCombine(hashCombine(H, 0x05), hashType(V->getType()));
  case ValueKind::GlobalVariable:
  case ValueKind::Function:
    return hashCombine(hashCombine(H, 0x06), hashString(V->getName()));
  default:
    // An operand outside the numbering (e.g. an instruction from another
    // function, which well-formed IR does not have). Hash its address-free
    // kind only; the Verifier rejects such IR anyway.
    return hashCombine(hashCombine(H, 0x07),
                       static_cast<uint64_t>(V->getKind()));
  }
}

} // namespace

uint64_t llvmmd::fingerprintFunction(const Function &F) {
  // Signature (the function's *name* is deliberately excluded so snapshots
  // and clones fingerprint identically to their source).
  uint64_t H = hashCombine(0x6c6c766d6d64ULL, F.getNumArgs());
  H = hashCombine(H, hashType(F.getReturnType()));
  for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
    H = hashCombine(H, hashType(F.getArg(I)->getType()));
  H = hashCombine(H, static_cast<uint64_t>(F.getMemoryEffect()));
  if (F.isDeclaration())
    return H;

  // Pass 1: dense numbering of blocks, arguments and instructions, so
  // forward references (phis) hash consistently.
  std::unordered_map<const Value *, uint64_t> Num;
  std::unordered_map<const BasicBlock *, uint64_t> BlockNum;
  uint64_t NextNum = 1;
  for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
    Num.emplace(F.getArg(I), NextNum++);
  for (const auto &BB : F.blocks()) {
    BlockNum.emplace(BB, NextNum++);
    for (const Instruction *I : *BB)
      Num.emplace(I, NextNum++);
  }

  // Pass 2: hash every instruction in block order.
  for (const auto &BB : F.blocks()) {
    H = hashCombine(H, BlockNum[BB]);
    for (const Instruction *I : *BB) {
      H = hashCombine(H, static_cast<uint64_t>(I->getOpcode()));
      H = hashCombine(H, hashType(I->getType()));
      for (const Value *Op : I->operands())
        H = hashOperand(H, Op, Num);
      // Opcode-specific payloads not covered by the operand list.
      if (const auto *Cmp = dyn_cast<ICmpInst>(I))
        H = hashCombine(H, static_cast<uint64_t>(Cmp->getPred()));
      else if (const auto *FCmp = dyn_cast<FCmpInst>(I))
        H = hashCombine(H, static_cast<uint64_t>(FCmp->getPred()));
      else if (const auto *AI = dyn_cast<AllocaInst>(I))
        H = hashCombine(H, hashType(AI->getAllocatedType()));
      else if (const auto *GEP = dyn_cast<GEPInst>(I))
        H = hashCombine(H, hashType(GEP->getElementType()));
      else if (const auto *Call = dyn_cast<CallInst>(I)) {
        H = hashCombine(H, hashString(Call->getCallee()->getName()));
        H = hashCombine(
            H, static_cast<uint64_t>(Call->getCallee()->getMemoryEffect()));
      } else if (const auto *Phi = dyn_cast<PhiNode>(I)) {
        for (unsigned PI = 0, PE = Phi->getNumIncoming(); PI != PE; ++PI)
          H = hashCombine(H, BlockNum[Phi->getIncomingBlock(PI)]);
      } else if (const auto *Br = dyn_cast<BranchInst>(I)) {
        for (unsigned SI = 0, SE = Br->getNumSuccessors(); SI != SE; ++SI)
          H = hashCombine(H, BlockNum[Br->getSuccessor(SI)]);
      }
    }
  }
  return H;
}
