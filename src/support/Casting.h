//===- Casting.h - LLVM-style isa/cast/dyn_cast templates ------*- C++ -*-===//
//
// Part of the llvm-md project: a normalizing value-graph translation
// validator, after Tristan, Govereau & Morrisett (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled opt-in RTTI in the style of llvm/Support/Casting.h. A class
/// hierarchy participates by providing `static bool classof(const Base *)`
/// on each derived class, usually dispatching on a Kind discriminator.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_SUPPORT_CASTING_H
#define LLVMMD_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace llvmmd {

/// Returns true if \p Val is an instance of \p To (or of one of \p Tos).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename Second, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<Second, Rest...>(Val);
}

/// Checked cast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<Ty>() argument of incompatible type!");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<Ty>() argument of incompatible type!");
  return static_cast<const To *>(Val);
}

/// Checking cast: returns null if \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates (and propagates) null input.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace llvmmd

#endif // LLVMMD_SUPPORT_CASTING_H
