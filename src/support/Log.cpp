//===- Log.cpp - Leveled structured logging -------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace llvmmd {

namespace {

/// -1 = unresolved (consult LLVMMD_LOG on first use).
std::atomic<int> GlobalLevel{-1};
std::atomic<bool> GlobalJSON{false};

std::mutex EmitLock;
std::string *TestSink = nullptr; // guarded by EmitLock

int resolveLevelSlow() {
  int Level = static_cast<int>(LogLevel::Warn);
  if (const char *Env = std::getenv("LLVMMD_LOG")) {
    LogLevel Parsed;
    if (parseLogLevel(Env, Parsed))
      Level = static_cast<int>(Parsed);
  }
  // Another thread may race the resolution; both compute from the same
  // environment, so either store wins harmlessly.
  int Expected = -1;
  GlobalLevel.compare_exchange_strong(Expected, Level,
                                      std::memory_order_relaxed);
  return GlobalLevel.load(std::memory_order_relaxed);
}

inline int currentLevel() {
  int L = GlobalLevel.load(std::memory_order_relaxed);
  return L >= 0 ? L : resolveLevelSlow();
}

void appendJSONEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

} // namespace

bool parseLogLevel(const std::string &Text, LogLevel &Out) {
  if (Text == "debug")
    Out = LogLevel::Debug;
  else if (Text == "info")
    Out = LogLevel::Info;
  else if (Text == "warn" || Text == "warning")
    Out = LogLevel::Warn;
  else if (Text == "error")
    Out = LogLevel::Error;
  else if (Text == "off" || Text == "silent")
    Out = LogLevel::Off;
  else
    return false;
  return true;
}

const char *logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "?";
}

void setLogLevel(LogLevel L) {
  GlobalLevel.store(static_cast<int>(L), std::memory_order_relaxed);
}

LogLevel logLevel() { return static_cast<LogLevel>(currentLevel()); }

void setLogJSON(bool Enable) {
  GlobalJSON.store(Enable, std::memory_order_relaxed);
}

bool logEnabled(LogLevel L) {
  return static_cast<int>(L) >= currentLevel() && L != LogLevel::Off;
}

void logMessage(LogLevel L, const char *Component,
                const std::string &Message) {
  if (!logEnabled(L))
    return;
  std::string Line;
  Line.reserve(Message.size() + 64);
  if (GlobalJSON.load(std::memory_order_relaxed)) {
    auto Now = std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count();
    Line += "{\"ts_us\": ";
    Line += std::to_string(Now);
    Line += ", \"level\": \"";
    Line += logLevelName(L);
    Line += "\", \"component\": \"";
    appendJSONEscaped(Line, Component);
    Line += "\", \"msg\": \"";
    appendJSONEscaped(Line, Message);
    Line += "\"}\n";
  } else {
    Line += "llvmmd: ";
    Line += logLevelName(L);
    Line += ": [";
    Line += Component;
    Line += "] ";
    Line += Message;
    Line += '\n';
  }
  std::lock_guard<std::mutex> Guard(EmitLock);
  if (TestSink) {
    *TestSink += Line;
    return;
  }
  std::fwrite(Line.data(), 1, Line.size(), stderr);
}

void setLogSinkForTesting(std::string *Sink) {
  std::lock_guard<std::mutex> Guard(EmitLock);
  TestSink = Sink;
}

} // namespace llvmmd
