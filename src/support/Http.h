//===- Http.h - Minimal embedded HTTP/1.1 responder -------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately tiny HTTP/1.1 server for the daemons' sidecar endpoints
/// (`GET /metrics`, `GET /healthz`) so a stock Prometheus can scrape a
/// `validate_server` or `validate_fleet` without `validate_client` as a
/// bridge. No dependencies, blocking POSIX sockets, one detached thread
/// per connection (scrapes are short; the framed protocol keeps the real
/// traffic).
///
/// Scope is intentionally narrow: GET only (anything else is 405), exact
/// path match after stripping the query string (miss is 404), headers are
/// read and discarded, every response carries Content-Length and closes
/// the connection. That is the whole contract a scraper needs; this is
/// not a web framework.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_SUPPORT_HTTP_H
#define LLVMMD_SUPPORT_HTTP_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace llvmmd {

struct HttpResponse {
  int Status = 200;
  /// Full Content-Type header value, e.g. the Prometheus exposition
  /// `text/plain; version=0.0.4; charset=utf-8`.
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;
};

/// Handler for one route; runs on the connection's thread, so it may
/// block briefly (the fleet roll-up does) but must be thread-safe.
using HttpHandler = std::function<HttpResponse()>;

class HttpServer {
public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer &) = delete;
  HttpServer &operator=(const HttpServer &) = delete;

  /// Registers \p H for exact-match GETs of \p Path. Call before start().
  void handle(const std::string &Path, HttpHandler H);

  /// Binds `HOST:PORT` (numeric IPv4 or `localhost`; port 0 = ephemeral,
  /// read back with boundPort()) and spawns the accept thread. False with
  /// \p Error on a bad address or bind failure.
  bool start(const std::string &HostPort, std::string *Error = nullptr);

  /// Joins the accept thread and waits for in-flight connections.
  void stop();

  /// Kernel-assigned port after start(); -1 before.
  int boundPort() const { return BoundPort; }

  /// `host:port` actually bound (ephemeral port resolved); empty before
  /// start().
  std::string boundAddress() const;

private:
  void acceptLoop();
  void serveConnection(int Fd);

  int ListenFd = -1;
  int BoundPort = -1;
  std::string Host;
  std::map<std::string, HttpHandler> Handlers;
  std::atomic<bool> Stop{false};
  std::atomic<bool> Started{false};
  std::thread AcceptThread;

  std::mutex ConnLock;
  std::condition_variable ConnDoneCV;
  unsigned ActiveConns = 0; // guarded by ConnLock
};

} // namespace llvmmd

#endif // LLVMMD_SUPPORT_HTTP_H
