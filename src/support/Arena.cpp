//===- Arena.cpp - Bump-pointer allocation with scoped teardown ----------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

using namespace llvmmd;

Arena::~Arena() {
  for (DtorNode *N = Dtors; N; N = N->Prev)
    N->Destroy(N->Obj);
  Slab *S = Cur;
  while (S) {
    Slab *Prev = S->Prev;
    ::operator delete(S);
    S = Prev;
  }
}

void *Arena::allocate(size_t Bytes, size_t Align) {
  uintptr_t P = reinterpret_cast<uintptr_t>(BumpPtr);
  uintptr_t Aligned = (P + Align - 1) & ~static_cast<uintptr_t>(Align - 1);
  if (!Cur || Aligned + Bytes > reinterpret_cast<uintptr_t>(BumpEnd)) {
    // Reserve alignment slack so the aligned pointer always fits; an
    // allocation larger than the growth schedule gets an exact-fit slab.
    grow(Bytes + Align);
    P = reinterpret_cast<uintptr_t>(BumpPtr);
    Aligned = (P + Align - 1) & ~static_cast<uintptr_t>(Align - 1);
  }
  BumpPtr = reinterpret_cast<char *>(Aligned + Bytes);
  BytesAllocated += Bytes;
  return reinterpret_cast<void *>(Aligned);
}

void Arena::grow(size_t MinBytes) {
  size_t Cap = NextSlabBytes;
  if (Cap < MinBytes)
    Cap = MinBytes;
  auto *S = static_cast<Slab *>(::operator new(sizeof(Slab) + Cap));
  S->Prev = Cur;
  S->Capacity = Cap;
  Cur = S;
  BumpPtr = reinterpret_cast<char *>(S + 1);
  BumpEnd = BumpPtr + Cap;
  BytesReserved += Cap;
  if (NextSlabBytes < MaxSlabBytes) {
    NextSlabBytes <<= 1;
    if (NextSlabBytes > MaxSlabBytes)
      NextSlabBytes = MaxSlabBytes;
  }
}

void Arena::reset() {
  for (DtorNode *N = Dtors; N; N = N->Prev)
    N->Destroy(N->Obj);
  Dtors = nullptr;

  // Recycle the largest slab; free the rest. A reset-heavy consumer (the
  // stepwise snapshot/revert loop) converges to one right-sized slab and
  // stops allocating.
  Slab *Keep = nullptr;
  Slab *S = Cur;
  while (S) {
    Slab *Prev = S->Prev;
    if (!Keep) {
      Keep = S;
    } else if (S->Capacity > Keep->Capacity) {
      BytesReserved -= Keep->Capacity;
      ::operator delete(Keep);
      Keep = S;
    } else {
      BytesReserved -= S->Capacity;
      ::operator delete(S);
    }
    S = Prev;
  }
  Cur = Keep;
  if (Cur) {
    Cur->Prev = nullptr;
    BumpPtr = reinterpret_cast<char *>(Cur + 1);
    BumpEnd = BumpPtr + Cur->Capacity;
  } else {
    BumpPtr = BumpEnd = nullptr;
  }
  BytesAllocated = 0;
}

size_t Arena::numSlabs() const {
  size_t N = 0;
  for (Slab *S = Cur; S; S = S->Prev)
    ++N;
  return N;
}
