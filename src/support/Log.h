//===- Log.h - Leveled structured logging -----------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One leveled logger for the whole stack, replacing the scattered
/// `fprintf(stderr, ...)` warnings that grew with each layer. Two output
/// shapes share one call site:
///
///   * text (default): `llvmmd: warn: [engine] verdict store rejected ...`
///     — what a human tails;
///   * JSON-lines (`setLogJSON(true)` / `--log-json`): one JSON object per
///     line with `ts_us`, `level`, `component`, `msg` — what a fleet log
///     collector filters with `jq`.
///
/// The threshold comes from `setLogLevel()` or, before any explicit call,
/// the `LLVMMD_LOG` environment variable (`debug|info|warn|error|off`).
/// The default is `warn`, matching the stderr chatter the logger replaced.
///
/// Emission is a single `fwrite` of a fully formatted line under a mutex,
/// so concurrent threads never interleave partial lines. The level check
/// itself is one relaxed atomic load — a disabled `logDebug` in a hot loop
/// costs a compare and branch.
///
/// Log output carries wall-clock timestamps and therefore must never feed
/// verdict-bearing report channels; it goes to stderr only.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_SUPPORT_LOG_H
#define LLVMMD_SUPPORT_LOG_H

#include <string>

namespace llvmmd {

enum class LogLevel : int {
  Debug = 0,
  Info = 1,
  Warn = 2,
  Error = 3,
  Off = 4,
};

/// Parses `debug|info|warn|warning|error|off|silent` (case-sensitive,
/// lowercase). Returns true and sets \p Out on success.
bool parseLogLevel(const std::string &Text, LogLevel &Out);

/// Spelled name of \p L (`"warn"`, ...). `Off` renders as `"off"`.
const char *logLevelName(LogLevel L);

/// Sets the global threshold; messages below it are dropped at the call
/// site. Overrides any `LLVMMD_LOG` environment setting.
void setLogLevel(LogLevel L);

/// Current threshold (resolving `LLVMMD_LOG` on first use).
LogLevel logLevel();

/// Switches between text and JSON-lines output.
void setLogJSON(bool Enable);

/// True when a message at \p L would be emitted — use to skip building
/// expensive message strings.
bool logEnabled(LogLevel L);

/// Emits one line at \p L tagged with \p Component (a short subsystem
/// name: "engine", "server", "fleet", "store", "loader").
void logMessage(LogLevel L, const char *Component, const std::string &Message);

inline void logDebug(const char *Component, const std::string &Message) {
  if (logEnabled(LogLevel::Debug))
    logMessage(LogLevel::Debug, Component, Message);
}
inline void logInfo(const char *Component, const std::string &Message) {
  if (logEnabled(LogLevel::Info))
    logMessage(LogLevel::Info, Component, Message);
}
inline void logWarn(const char *Component, const std::string &Message) {
  if (logEnabled(LogLevel::Warn))
    logMessage(LogLevel::Warn, Component, Message);
}
inline void logError(const char *Component, const std::string &Message) {
  if (logEnabled(LogLevel::Error))
    logMessage(LogLevel::Error, Component, Message);
}

/// For tests: routes log lines into \p Sink instead of stderr (nullptr
/// restores stderr). Not for production use.
void setLogSinkForTesting(std::string *Sink);

} // namespace llvmmd

#endif // LLVMMD_SUPPORT_LOG_H
