//===- Http.cpp - Minimal embedded HTTP/1.1 responder ---------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "support/Http.h"

#include "support/Log.h"

#include <cstring>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace llvmmd;

namespace {

const char *statusReason(int Status) {
  switch (Status) {
  case 200:
    return "OK";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  default:
    return "Internal Server Error";
  }
}

#ifndef _WIN32
bool sendAll(int Fd, const std::string &Bytes) {
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                       MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Sent += static_cast<size_t>(N);
  }
  return true;
}
#endif

} // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string &Path, HttpHandler H) {
  Handlers[Path] = std::move(H);
}

std::string HttpServer::boundAddress() const {
  if (BoundPort < 0)
    return "";
  return Host + ":" + std::to_string(BoundPort);
}

bool HttpServer::start(const std::string &HostPort, std::string *Error) {
#ifndef _WIN32
  if (Started) {
    if (Error)
      *Error = "http server already started";
    return false;
  }
  size_t Colon = HostPort.rfind(':');
  if (Colon == std::string::npos || Colon + 1 >= HostPort.size()) {
    if (Error)
      *Error = "http address must be HOST:PORT, got '" + HostPort + "'";
    return false;
  }
  Host = HostPort.substr(0, Colon);
  if (Host == "localhost")
    Host = "127.0.0.1";
  int Port = -1;
  try {
    Port = std::stoi(HostPort.substr(Colon + 1));
  } catch (...) {
  }
  if (Port < 0 || Port > 65535) {
    if (Error)
      *Error = "bad http port in '" + HostPort + "'";
    return false;
  }

  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "bad http host '" + Host + "' (numeric IPv4 or localhost)";
    return false;
  }

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  int One = 1;
  if (Fd >= 0)
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (Fd < 0 ||
      ::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 16) != 0) {
    if (Error)
      *Error = "cannot bind http listener on " + HostPort;
    if (Fd >= 0)
      ::close(Fd);
    return false;
  }
  socklen_t AddrLen = sizeof(Addr);
  ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen);
  BoundPort = ntohs(Addr.sin_port);
  ListenFd = Fd;
  Stop = false;
  Started = true;
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
#else
  (void)HostPort;
  if (Error)
    *Error = "the http responder is POSIX-only";
  return false;
#endif
}

void HttpServer::stop() {
#ifndef _WIN32
  if (!Started)
    return;
  Stop = true;
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (ListenFd >= 0)
    ::close(ListenFd);
  ListenFd = -1;
  {
    std::unique_lock<std::mutex> G(ConnLock);
    ConnDoneCV.wait(G, [this] { return ActiveConns == 0; });
  }
  Started = false;
#endif
}

void HttpServer::acceptLoop() {
#ifndef _WIN32
  while (!Stop) {
    pollfd P{ListenFd, POLLIN, 0};
    int N = ::poll(&P, 1, /*timeout_ms=*/100);
    if (N <= 0 || !(P.revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    // Bounded I/O either way: a scraper that stalls mid-request or stops
    // reading the reply costs one connection thread for a few seconds,
    // never the daemon.
    timeval Timeout{5, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));
    {
      std::lock_guard<std::mutex> G(ConnLock);
      ++ActiveConns;
    }
    std::thread([this, Fd] {
      serveConnection(Fd);
      std::lock_guard<std::mutex> G(ConnLock);
      --ActiveConns;
      ConnDoneCV.notify_all();
    }).detach();
  }
#endif
}

void HttpServer::serveConnection(int Fd) {
#ifndef _WIN32
  // Read until the blank line ending the header block; request bodies are
  // out of scope (GET only) and anything past 8KB of headers is abuse.
  std::string Request;
  char Buf[1024];
  while (Request.find("\r\n\r\n") == std::string::npos &&
         Request.size() < 8192) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Request.append(Buf, static_cast<size_t>(N));
  }

  HttpResponse R;
  std::string Allow;
  size_t LineEnd = Request.find("\r\n");
  size_t Sp1 = Request.find(' ');
  size_t Sp2 = Sp1 == std::string::npos ? std::string::npos
                                        : Request.find(' ', Sp1 + 1);
  if (LineEnd == std::string::npos || Sp1 == std::string::npos ||
      Sp2 == std::string::npos || Sp2 > LineEnd) {
    R.Status = 400;
    R.Body = "malformed request line\n";
  } else {
    std::string Method = Request.substr(0, Sp1);
    std::string Path = Request.substr(Sp1 + 1, Sp2 - Sp1 - 1);
    size_t Query = Path.find('?');
    if (Query != std::string::npos)
      Path.resize(Query);
    if (Method != "GET") {
      R.Status = 405;
      R.Body = "only GET is served here\n";
      Allow = "Allow: GET\r\n";
    } else {
      auto It = Handlers.find(Path);
      if (It == Handlers.end()) {
        R.Status = 404;
        R.Body = "no such path: " + Path + "\n";
      } else {
        R = It->second();
      }
    }
  }

  std::string Reply = "HTTP/1.1 " + std::to_string(R.Status) + " " +
                      statusReason(R.Status) + "\r\n" + Allow +
                      "Content-Type: " + R.ContentType + "\r\n" +
                      "Content-Length: " + std::to_string(R.Body.size()) +
                      "\r\nConnection: close\r\n\r\n" + R.Body;
  if (!sendAll(Fd, Reply))
    logDebug("http", "short write on reply (peer gone?)");
  ::close(Fd);
#else
  (void)Fd;
#endif
}
