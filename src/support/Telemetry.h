//===- Telemetry.h - Process-wide metrics registry --------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide metrics registry in the Prometheus client-library mold,
/// sized for the engine's hot paths:
///
///   * `Counter` — monotonic, sharded across cache-line-padded atomics so
///     eight engine threads bumping the same counter never bounce one
///     line; `add()` is a relaxed fetch_add on the caller's shard.
///   * `Gauge` — a single atomic int64 (set/add); gauges are updated from
///     cold paths (queue admission, scrape time), not per-function work.
///   * `Histogram` — fixed bucket boundaries chosen at registration, one
///     atomic per bucket plus sharded count/sum; `observe()` is a linear
///     scan of ≤ ~16 boundaries and two relaxed adds. No locks anywhere
///     on the observation path.
///
/// Instruments are registered once by name (`telemetry().counter(...)`)
/// and the returned reference is stable for the process lifetime — hold
/// it, don't re-look-up per event. Registration takes a mutex; re-
/// registering a name returns the existing instrument (helps tests that
/// construct a server repeatedly in one process).
///
/// `renderPrometheus()` snapshots every instrument as Prometheus text
/// exposition format (`# HELP` / `# TYPE` + samples; histograms emit
/// cumulative `_bucket{le=...}` / `_sum` / `_count`). Metric names follow
/// `llvmmd_<layer>_<what>[_total|_us]`.
///
/// Telemetry values never feed verdict-bearing reports: scrapes are a
/// separate channel, and every suite/module report stays byte-identical
/// whether or not anything reads the registry.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_SUPPORT_TELEMETRY_H
#define LLVMMD_SUPPORT_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace llvmmd {

/// Monotonic counter, sharded to keep concurrent increments off one cache
/// line. Readers sum the shards (approximate snapshot under concurrent
/// writers, exact once writers quiesce — the same contract Prometheus
/// clients give).
class Counter {
public:
  static constexpr unsigned NumShards = 16;

  void add(uint64_t Delta) {
    Shards[shardIndex()].Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  uint64_t value() const {
    uint64_t Sum = 0;
    for (const auto &S : Shards)
      Sum += S.Value.load(std::memory_order_relaxed);
    return Sum;
  }

private:
  static unsigned shardIndex();

  struct alignas(64) Shard {
    std::atomic<uint64_t> Value{0};
  };
  Shard Shards[NumShards];
};

/// Point-in-time value; updated from cold paths, so one atomic suffices.
class Gauge {
public:
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  void add(int64_t Delta) { Value.fetch_add(Delta, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// Fixed-boundary latency histogram. Boundaries are upper bounds in the
/// metric's unit (microseconds by convention); an observation lands in
/// the first bucket whose bound is >= the value, or overflows past the
/// last bound (the implicit +Inf bucket).
class Histogram {
public:
  explicit Histogram(std::vector<uint64_t> UpperBounds);

  void observe(uint64_t V) {
    unsigned I = 0, N = static_cast<unsigned>(Bounds.size());
    while (I < N && V > Bounds[I])
      ++I;
    BucketCounts[I].fetch_add(1, std::memory_order_relaxed);
    Count.add(1);
    Sum.add(V);
  }

  const std::vector<uint64_t> &bounds() const { return Bounds; }
  /// Count in bucket \p I (non-cumulative); index bounds().size() is the
  /// overflow (+Inf) bucket.
  uint64_t bucketCount(unsigned I) const {
    return BucketCounts[I].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return Count.value(); }
  uint64_t sum() const { return Sum.value(); }

private:
  std::vector<uint64_t> Bounds;
  std::vector<std::atomic<uint64_t>> BucketCounts; // Bounds.size() + 1
  Counter Count;
  Counter Sum;
};

/// Default latency boundaries, 100us to 60s. Shared by job/queue-wait/
/// checkpoint histograms so fleet roll-ups can merge bucket-for-bucket.
/// Derived from the measured distributions in `bench/baselines/` by
/// `scripts/derive_hist_bounds.py` (see the .cpp for the layout notes);
/// re-run that script against fresh BENCH artifacts before retuning.
std::vector<uint64_t> defaultLatencyBoundsMicros();

/// The Content-Type a Prometheus text-exposition response must carry
/// (the HTTP /metrics endpoints serve renderPrometheus() under it).
inline constexpr const char *PrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

class MetricsRegistry {
public:
  /// Registers (or finds) an instrument. Help text is taken from the
  /// first registration. References stay valid for the process lifetime.
  Counter &counter(const std::string &Name, const std::string &Help);
  Gauge &gauge(const std::string &Name, const std::string &Help);
  Histogram &histogram(const std::string &Name, const std::string &Help,
                       std::vector<uint64_t> UpperBounds);

  /// Prometheus text exposition format, families sorted by name.
  std::string renderPrometheus() const;

private:
  struct Family;
  Family &findOrCreate(const std::string &Name, const std::string &Help,
                       int Kind);

  struct Impl;
  Impl *impl() const;
};

/// The process-wide registry.
MetricsRegistry &telemetry();

} // namespace llvmmd

#endif // LLVMMD_SUPPORT_TELEMETRY_H
