//===- GatedSSA.h - Gating analysis for Monadic Gated SSA -------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the gating information of Monadic Gated SSA form (paper §2-3,
/// after Tu & Padua and Havlak):
///
///  * for every φ in a non-header block, a *gate* per incoming edge — the
///    path predicate from the block's immediate dominator to that edge,
///    expressed as a tree of branch conditions (mutually exclusive across
///    the φ's edges by construction);
///  * for every loop-header φ, a μ split: which incoming edges are initial
///    (from outside the loop) and which are iteration edges (from latches);
///  * for every loop exit edge, the η condition: the polarity-adjusted
///    branch condition under which control *stays* in the loop.
///
/// The value-graph builder consumes these to place γ/μ/η nodes; the
/// "monadic" half (threading the memory state) happens in the builder
/// itself, which treats memory as one more gated variable.
///
/// Functions with irreducible control flow are rejected, as in the paper
/// (§5.1); functions with multiple return blocks are likewise rejected by
/// this front-end (the paper compares a single pair of state pointers).
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_GATED_GATEDSSA_H
#define LLVMMD_GATED_GATEDSSA_H

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace llvmmd {

class BasicBlock;
class Function;
class Value;

/// A predicate over branch conditions, as a small expression tree.
struct GateExpr {
  enum class Kind : uint8_t { True, False, Cond, Not, And, Or } K;
  /// For Cond: the i1 condition value of the branch.
  Value *Cond = nullptr;
  const GateExpr *A = nullptr;
  const GateExpr *B = nullptr;
};

/// Owns GateExprs and provides smart constructors with local
/// simplification (true/false absorption) so trees stay small.
class GateFactory {
public:
  const GateExpr *getTrue() { return &TrueExpr; }
  const GateExpr *getFalse() { return &FalseExpr; }
  const GateExpr *makeCond(Value *C);
  const GateExpr *makeNot(const GateExpr *A);
  const GateExpr *makeAnd(const GateExpr *A, const GateExpr *B);
  const GateExpr *makeOr(const GateExpr *A, const GateExpr *B);

private:
  const GateExpr *intern(GateExpr E);
  GateExpr TrueExpr{GateExpr::Kind::True, nullptr, nullptr, nullptr};
  GateExpr FalseExpr{GateExpr::Kind::False, nullptr, nullptr, nullptr};
  std::vector<std::unique_ptr<GateExpr>> Pool;
};

/// Gating facts for one function.
class GatingAnalysis {
public:
  /// Builds the analysis; check isSupported() before using the queries.
  explicit GatingAnalysis(const Function &F);

  bool isSupported() const { return Supported; }
  const std::string &getUnsupportedReason() const { return Reason; }

  const DominatorTree &getDomTree() const { return *DT; }
  const LoopInfo &getLoopInfo() const { return *LI; }

  /// Gate for the φ incoming edge Pred -> Block: the path predicate from
  /// idom(Block) through Pred, excluding back edges. Mutually exclusive
  /// with the gates of Block's other incoming edges.
  const GateExpr *getEdgeGate(const BasicBlock *Pred,
                              const BasicBlock *Block);

  /// Gate for a latch edge Latch -> Header relative to the header itself;
  /// used to combine multiple latches into a single μ iteration value.
  const GateExpr *getLatchGate(const BasicBlock *Latch,
                               const BasicBlock *Header) {
    return computeEdgePredicate(Latch, Header, Header);
  }

  /// The condition under which control stays inside \p L rather than
  /// leaving through the exit edge Exiting -> Exit.
  const GateExpr *getStayCondition(const Loop &L, const BasicBlock *Exiting,
                                   const BasicBlock *Exit) const;

  /// Deterministic representative exit edge of \p L (first in RPO order):
  /// used to place η nodes for values referenced outside the loop other
  /// than through exit-block φs.
  std::pair<const BasicBlock *, const BasicBlock *>
  getPrimaryExitEdge(const Loop &L) const;

  GateFactory &getFactory() { return Factory; }

private:
  const GateExpr *computeEdgePredicate(const BasicBlock *From,
                                       const BasicBlock *To,
                                       const BasicBlock *Root);

  const Function &F;
  bool Supported = true;
  std::string Reason;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<LoopInfo> LI;
  GateFactory Factory;
  // Cache of block predicates relative to a root: (root, block) -> expr.
  std::map<std::pair<const BasicBlock *, const BasicBlock *>,
           const GateExpr *>
      PredCache;
};

} // namespace llvmmd

#endif // LLVMMD_GATED_GATEDSSA_H
