//===- GatedSSA.cpp - Gating analysis for Monadic Gated SSA -----------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "gated/GatedSSA.h"

#include "ir/Module.h"

#include <algorithm>

using namespace llvmmd;

//===----------------------------------------------------------------------===//
// GateFactory
//===----------------------------------------------------------------------===//

const GateExpr *GateFactory::intern(GateExpr E) {
  Pool.push_back(std::make_unique<GateExpr>(E));
  return Pool.back().get();
}

const GateExpr *GateFactory::makeCond(Value *C) {
  return intern({GateExpr::Kind::Cond, C, nullptr, nullptr});
}

const GateExpr *GateFactory::makeNot(const GateExpr *A) {
  if (A->K == GateExpr::Kind::True)
    return getFalse();
  if (A->K == GateExpr::Kind::False)
    return getTrue();
  if (A->K == GateExpr::Kind::Not)
    return A->A;
  return intern({GateExpr::Kind::Not, nullptr, A, nullptr});
}

const GateExpr *GateFactory::makeAnd(const GateExpr *A, const GateExpr *B) {
  if (A->K == GateExpr::Kind::True)
    return B;
  if (B->K == GateExpr::Kind::True)
    return A;
  if (A->K == GateExpr::Kind::False || B->K == GateExpr::Kind::False)
    return getFalse();
  return intern({GateExpr::Kind::And, nullptr, A, B});
}

const GateExpr *GateFactory::makeOr(const GateExpr *A, const GateExpr *B) {
  if (A->K == GateExpr::Kind::False)
    return B;
  if (B->K == GateExpr::Kind::False)
    return A;
  if (A->K == GateExpr::Kind::True || B->K == GateExpr::Kind::True)
    return getTrue();
  return intern({GateExpr::Kind::Or, nullptr, A, B});
}

//===----------------------------------------------------------------------===//
// GatingAnalysis
//===----------------------------------------------------------------------===//

GatingAnalysis::GatingAnalysis(const Function &F) : F(F) {
  if (F.isDeclaration()) {
    Supported = false;
    Reason = "declaration";
    return;
  }
  DT = std::make_unique<DominatorTree>(F);
  LI = std::make_unique<LoopInfo>(F, *DT);
  if (LI->isIrreducible()) {
    Supported = false;
    Reason = "irreducible control flow";
    return;
  }
  // Single return block (reachable), as the validator compares one pair of
  // (return value, final memory) roots.
  unsigned Rets = 0;
  for (const BasicBlock *BB : DT->getRPO())
    if (BB->getTerminator() && isa<ReturnInst>(BB->getTerminator()))
      ++Rets;
  if (Rets != 1) {
    Supported = false;
    Reason = Rets == 0 ? "no reachable return" : "multiple return blocks";
    return;
  }
}

namespace {

/// True if Pred -> Succ is a back edge (Succ is the header of a loop that
/// contains Pred).
bool isBackEdge(const LoopInfo &LI, const BasicBlock *Pred,
                const BasicBlock *Succ) {
  const Loop *L = LI.getLoopFor(Succ);
  return L && L->getHeader() == Succ && L->contains(Pred);
}

/// Branch condition contribution of the edge From -> To: true for
/// unconditional edges; c or !c for conditional ones.
const GateExpr *edgeCondition(GateFactory &GF, const BasicBlock *From,
                              const BasicBlock *To) {
  const auto *Br = dyn_cast_or_null<BranchInst>(From->getTerminator());
  if (!Br || !Br->isConditional())
    return GF.getTrue();
  if (Br->getSuccessor(0) == To && Br->getSuccessor(1) == To)
    return GF.getTrue();
  if (Br->getSuccessor(0) == To)
    return GF.makeCond(Br->getCondition());
  return GF.makeNot(GF.makeCond(Br->getCondition()));
}

/// Outermost loop containing \p BB but not containing \p Avoid; null if
/// none.
const Loop *outermostLoopNotContaining(const LoopInfo &LI,
                                       const BasicBlock *BB,
                                       const BasicBlock *Avoid) {
  const Loop *Best = nullptr;
  for (const Loop *L = LI.getLoopFor(BB); L; L = L->getParent())
    if (!L->contains(Avoid))
      Best = L;
  return Best;
}

/// Number of exit edges (Exiting, Exit successor pairs) of \p L.
unsigned countExitEdges(const Loop &L) {
  unsigned N = 0;
  for (const BasicBlock *BB : L.getBlocks())
    for (const BasicBlock *Succ : BB->successors())
      if (!L.contains(Succ))
        ++N;
  return N;
}

} // namespace

const GateExpr *
GatingAnalysis::computeEdgePredicate(const BasicBlock *From,
                                     const BasicBlock *To,
                                     const BasicBlock *Root) {
  // Recursively computes the path predicate of a *block* relative to Root,
  // then conjoins the edge condition. Implemented iteratively with an
  // explicit worklist to avoid deep recursion on long chains.
  struct Helper {
    GatingAnalysis &GA;
    const BasicBlock *Root;

    const GateExpr *blockPred(const BasicBlock *BB) {
      if (BB == Root)
        return GA.Factory.getTrue();
      auto Key = std::make_pair(Root, BB);
      auto It = GA.PredCache.find(Key);
      if (It != GA.PredCache.end())
        return It->second;
      // Seed the cache to break accidental cycles (should not occur on
      // reducible forward graphs, but stay safe).
      GA.PredCache[Key] = GA.Factory.getFalse();
      GateFactory &GF = GA.Factory;
      const LoopInfo &LI = *GA.LI;
      const GateExpr *Acc = GF.getFalse();
      for (const BasicBlock *P : BB->predecessors()) {
        if (!GA.DT->isReachable(P))
          continue;
        if (isBackEdge(LI, P, BB))
          continue;
        // Does this edge leave a loop that does not contain BB?
        if (const Loop *L = outermostLoopNotContaining(LI, P, BB)) {
          if (countExitEdges(*L) != 1) {
            GA.Supported = false;
            GA.Reason = "gate crosses multi-exit loop";
            return GF.getFalse();
          }
          // Single-exit loop + assumed termination: control that reaches
          // the loop leaves through this edge. If the predicate root is
          // itself inside the loop, the exit is certain; otherwise the
          // contribution is the loop's entry predicate.
          if (L->contains(Root)) {
            Acc = GF.getTrue();
            continue;
          }
          const GateExpr *Entry = GF.getFalse();
          for (const BasicBlock *E : L->getEntering())
            Entry = GF.makeOr(
                Entry, GF.makeAnd(blockPred(E),
                                  edgeCondition(GF, E, L->getHeader())));
          Acc = GF.makeOr(Acc, Entry);
          continue;
        }
        Acc = GF.makeOr(
            Acc, GF.makeAnd(blockPred(P), edgeCondition(GF, P, BB)));
      }
      GA.PredCache[Key] = Acc;
      return Acc;
    }
  };

  Helper H{*this, Root};
  GateFactory &GF = Factory;
  const LoopInfo &LIRef = *LI;
  // The edge itself may be a loop-exit edge.
  if (const Loop *L = outermostLoopNotContaining(LIRef, From, To)) {
    if (countExitEdges(*L) != 1) {
      Supported = false;
      Reason = "gate crosses multi-exit loop";
      return GF.getFalse();
    }
    if (L->contains(Root))
      return GF.getTrue(); // exit certain, given termination
    const GateExpr *Entry = GF.getFalse();
    for (const BasicBlock *E : L->getEntering())
      Entry = GF.makeOr(Entry, GF.makeAnd(H.blockPred(E),
                                          edgeCondition(GF, E,
                                                        L->getHeader())));
    return Entry;
  }
  return GF.makeAnd(H.blockPred(From), edgeCondition(GF, From, To));
}

const GateExpr *GatingAnalysis::getEdgeGate(const BasicBlock *Pred,
                                            const BasicBlock *Block) {
  assert(Supported && "query on unsupported function");
  const BasicBlock *Root = DT->getIDom(Block);
  assert(Root && "edge gate for entry block requested");
  return computeEdgePredicate(Pred, Block, Root);
}

const GateExpr *GatingAnalysis::getStayCondition(const Loop &L,
                                                 const BasicBlock *Exiting,
                                                 const BasicBlock *Exit) const {
  auto &GF = const_cast<GateFactory &>(Factory);
  const auto *Br = dyn_cast_or_null<BranchInst>(Exiting->getTerminator());
  if (!Br || !Br->isConditional())
    return GF.getFalse(); // unconditional exit: never stays
  (void)Exit;
  const GateExpr *Stay = GF.getFalse();
  if (L.contains(Br->getSuccessor(0)))
    Stay = GF.makeOr(Stay, GF.makeCond(Br->getCondition()));
  if (L.contains(Br->getSuccessor(1)))
    Stay = GF.makeOr(Stay, GF.makeNot(GF.makeCond(Br->getCondition())));
  return Stay;
}

std::pair<const BasicBlock *, const BasicBlock *>
GatingAnalysis::getPrimaryExitEdge(const Loop &L) const {
  std::map<const BasicBlock *, unsigned> RPOIndex;
  unsigned I = 0;
  for (const BasicBlock *BB : DT->getRPO())
    RPOIndex[BB] = I++;
  const BasicBlock *BestFrom = nullptr;
  const BasicBlock *BestTo = nullptr;
  unsigned BestKey = ~0u;
  for (const BasicBlock *BB : L.getBlocks()) {
    auto It = RPOIndex.find(BB);
    if (It == RPOIndex.end())
      continue;
    unsigned SuccIdx = 0;
    for (const BasicBlock *Succ : BB->successors()) {
      if (!L.contains(Succ)) {
        unsigned Key = It->second * 4 + SuccIdx;
        if (Key < BestKey) {
          BestKey = Key;
          BestFrom = BB;
          BestTo = Succ;
        }
      }
      ++SuccIdx;
    }
  }
  return {BestFrom, BestTo};
}
